//! AS-path interning: one shared allocation per distinct path.
//!
//! The measurement layer caches deterministic facts per host *pair*,
//! but the AS-level paths inside those facts are heavily shared: every
//! host in an eyeball AS reaches a given destination over the same
//! policy route, the reverse pair `(b, a)` stores the mirror of
//! `(a, b)`'s arrays, and same-AS pairs all store one-element paths.
//! Storing each pair's paths as private `Arc<[Asn]>` allocations
//! multiplies that redundancy by the pair count.
//!
//! [`PathInterner`] collapses the redundancy: `intern` returns a
//! canonical `Arc<[Asn]>` per distinct path content, so `n` pairs
//! sharing a route hold `n` refcounts on **one** allocation. Two
//! consequences the engine exploits:
//!
//! - **Residency**: a pair-cache byte budget charges the array payload
//!   once (to the interning that created it) instead of once per pair.
//! - **Churn**: revalidating stale pairs against a delta batch
//!   ([`DirtyEpoch`-style `crosses` checks]) can memoize per unique
//!   `Arc` pointer — per-path work, not per-pair work.
//!
//! The interner holds only [`Weak`] references, so it never keeps a
//! path alive: when the last cache entry using a path is evicted, the
//! allocation dies and the interner's slot is pruned on its bucket's
//! next visit. Buckets are sharded under independent mutexes so
//! data-parallel pair expansion rarely contends.

use crate::ids::Asn;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Shards in the interner. Interning happens on pair-cache *misses*
/// (first-touch rounds, churn recomputes), which the engine runs
/// data-parallel — independent locks keep those expansions from
/// serializing on one mutex.
const INTERN_SHARDS: usize = 32;

/// Snapshot of an interner's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Paths interned fresh (a new allocation was created).
    pub interned: u64,
    /// Interning requests served by an existing shared allocation.
    pub dedup_hits: u64,
}

/// One hash bucket: the live paths whose content hashed there.
type Bucket = Vec<Weak<[Asn]>>;

/// A content-addressed table of live `Arc<[Asn]>` paths.
pub struct PathInterner {
    shards: Vec<Mutex<HashMap<u64, Bucket>>>,
    interned: AtomicU64,
    dedup_hits: AtomicU64,
}

impl Default for PathInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl PathInterner {
    /// An empty interner.
    pub fn new() -> Self {
        PathInterner {
            shards: (0..INTERN_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            interned: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
        }
    }

    /// The canonical shared allocation for `path`, plus whether this
    /// call created it (`true` = fresh — the caller owning a byte
    /// gauge should charge the array payload exactly when fresh).
    ///
    /// Dead entries (paths whose last strong reference was dropped)
    /// are pruned from the visited bucket, so the table tracks the
    /// *live* path population, not everything ever interned.
    pub fn intern(&self, path: &[Asn]) -> (Arc<[Asn]>, bool) {
        let hash = hash_path(path);
        let mut shard = self.shards[(hash as usize) % INTERN_SHARDS].lock();
        let bucket = shard.entry(hash).or_default();
        let mut found = None;
        bucket.retain(|weak| match weak.upgrade() {
            Some(arc) => {
                if found.is_none() && *arc == *path {
                    found = Some(arc);
                }
                true
            }
            None => false,
        });
        if let Some(arc) = found {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return (arc, false);
        }
        let arc: Arc<[Asn]> = Arc::from(path);
        bucket.push(Arc::downgrade(&arc));
        self.interned.fetch_add(1, Ordering::Relaxed);
        (arc, true)
    }

    /// Lifetime counters: fresh interns vs. dedup hits.
    pub fn stats(&self) -> InternStats {
        InternStats {
            interned: self.interned.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
        }
    }

    /// Distinct paths currently alive in the table (scans every
    /// bucket; diagnostics only).
    pub fn live_paths(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .flat_map(|b| b.iter())
                    .filter(|w| w.strong_count() > 0)
                    .count()
            })
            .sum()
    }
}

/// SplitMix64-style content hash over the path's ASNs. Collisions are
/// handled by per-bucket content comparison, so this only needs to
/// spread.
fn hash_path(path: &[Asn]) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3u64 ^ (path.len() as u64);
    for asn in path {
        h ^= u64::from(asn.0);
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(asns: &[u32]) -> Vec<Asn> {
        asns.iter().copied().map(Asn).collect()
    }

    #[test]
    fn identical_paths_share_one_allocation() {
        let interner = PathInterner::new();
        let (a, fresh_a) = interner.intern(&path(&[1, 2, 3]));
        let (b, fresh_b) = interner.intern(&path(&[1, 2, 3]));
        assert!(fresh_a);
        assert!(!fresh_b);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = interner.stats();
        assert_eq!(stats.interned, 1);
        assert_eq!(stats.dedup_hits, 1);
    }

    #[test]
    fn distinct_paths_get_distinct_allocations() {
        let interner = PathInterner::new();
        let (a, _) = interner.intern(&path(&[1, 2, 3]));
        let (b, fresh) = interner.intern(&path(&[3, 2, 1]));
        assert!(fresh, "reversed content is a different path");
        assert!(!Arc::ptr_eq(&a, &b));
        // Prefix/suffix confusion would be a hash-or-compare bug.
        let (c, fresh) = interner.intern(&path(&[1, 2]));
        assert!(fresh);
        assert_eq!(&*c, &path(&[1, 2])[..]);
    }

    #[test]
    fn dead_paths_are_reinterned_fresh() {
        let interner = PathInterner::new();
        let (a, _) = interner.intern(&path(&[7, 8]));
        assert_eq!(interner.live_paths(), 1);
        drop(a);
        assert_eq!(interner.live_paths(), 0, "weak refs must not keep paths");
        let (_b, fresh) = interner.intern(&path(&[7, 8]));
        assert!(fresh, "a dead path re-interns as a fresh allocation");
        assert_eq!(interner.stats().interned, 2);
    }

    #[test]
    fn concurrent_interning_yields_one_canonical_arc() {
        let interner = PathInterner::new();
        let arcs: Vec<Arc<[Asn]>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| interner.intern(&path(&[5, 6, 7])).0))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for arc in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], arc));
        }
        let stats = interner.stats();
        assert_eq!(stats.interned, 1, "exactly one thread may create");
        assert_eq!(stats.dedup_hits, 7);
    }

    #[test]
    fn empty_path_is_internable() {
        let interner = PathInterner::new();
        let (a, fresh) = interner.intern(&[]);
        assert!(fresh);
        assert!(a.is_empty());
        let (_b, fresh) = interner.intern(&[]);
        assert!(!fresh);
    }
}
