//! Colocation facilities and Internet Exchange Points.
//!
//! Facilities are the paper's central object: buildings that house router
//! and server equipment for many networks and host the IXP switching
//! fabrics over which those networks peer. The generator creates a few
//! *flagship* facilities at hub metros (hundreds of members, several
//! IXPs — mirroring Telehouse North, Equinix AM7/FR5, etc.) and a long
//! tail of small regional sites.

use crate::ids::{Asn, FacilityId, IxpId};
use shortcuts_geo::CityId;

/// A colocation facility.
#[derive(Debug, Clone)]
pub struct Facility {
    /// Facility id (doubles as the synthetic PeeringDB id).
    pub id: FacilityId,
    /// Human-readable name, e.g. `"Colo-London-1"`.
    pub name: String,
    /// City the facility is in.
    pub city: CityId,
    /// Networks with equipment in the facility.
    pub members: Vec<Asn>,
    /// IXPs whose fabric is present in the facility.
    pub ixps: Vec<IxpId>,
    /// Whether the facility (or a resident provider) sells cloud services.
    pub offers_cloud: bool,
}

impl Facility {
    /// Number of colocated networks.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Whether `asn` has equipment here.
    pub fn has_member(&self, asn: Asn) -> bool {
        self.members.contains(&asn)
    }
}

/// An Internet Exchange Point: a layer-2 fabric over which members peer.
#[derive(Debug, Clone)]
pub struct Ixp {
    /// IXP id.
    pub id: IxpId,
    /// Human-readable name, e.g. `"IX-Amsterdam-0"`.
    pub name: String,
    /// City of the (primary) fabric.
    pub city: CityId,
    /// Facilities housing the fabric.
    pub facilities: Vec<FacilityId>,
    /// Member networks.
    pub members: Vec<Asn>,
}

impl Ixp {
    /// Number of member networks.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Whether `asn` is connected to the fabric.
    pub fn has_member(&self, asn: Asn) -> bool {
        self.members.contains(&asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fac() -> Facility {
        Facility {
            id: FacilityId(1),
            name: "Colo-Test-1".into(),
            city: CityId(0),
            members: vec![Asn(10), Asn(20)],
            ixps: vec![IxpId(3)],
            offers_cloud: true,
        }
    }

    #[test]
    fn facility_membership() {
        let f = fac();
        assert_eq!(f.member_count(), 2);
        assert!(f.has_member(Asn(10)));
        assert!(!f.has_member(Asn(30)));
    }

    #[test]
    fn ixp_membership() {
        let ix = Ixp {
            id: IxpId(3),
            name: "IX-Test-0".into(),
            city: CityId(0),
            facilities: vec![FacilityId(1)],
            members: vec![Asn(10)],
        };
        assert_eq!(ix.member_count(), 1);
        assert!(ix.has_member(Asn(10)));
        assert!(!ix.has_member(Asn(20)));
    }
}
