//! Generator fingerprint canary.
//!
//! The generator is the root of the whole determinism story: every
//! campaign seed, every CSV byte, and every cross-run equivalence
//! proof assumes `Topology::generate(cfg, seed)` produces the same
//! world forever. These tests pin an FNV-1a digest over everything a
//! refactor could plausibly disturb — AS records, facility and IXP
//! membership rosters, link count, and full adjacency — for the two
//! shipped presets. The hashes were captured before the
//! allocation-churn rewrite of `generate()` (scratch-buffer reuse,
//! membership inversion, geometric-skip pair sampling) and must never
//! change: a mismatch means the RNG call sequence moved and every
//! downstream artifact silently changed with it.
//!
//! `TopologyConfig::scaled` worlds are deliberately *not* pinned — the
//! sparse sampling path makes no stream-compatibility promise across
//! scales, only self-determinism (checked below).

use shortcuts_topology::generator::TopologyConfig;
use shortcuts_topology::Topology;

/// FNV-1a style digest over AS records, facility/IXP membership, link
/// count, and adjacency, in deterministic topology order.
fn fingerprint(t: &Topology) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    for info in t.ases() {
        mix(info.asn.0 as u64);
        mix(info.pops.len() as u64);
        mix(info.prefixes.len() as u64);
        mix(info.user_share.to_bits());
    }
    for f in t.facilities() {
        mix(f.members.len() as u64);
        for m in &f.members {
            mix(m.0 as u64);
        }
    }
    for ix in t.ixps() {
        mix(ix.members.len() as u64);
        for m in &ix.members {
            mix(m.0 as u64);
        }
    }
    mix(t.link_count() as u64);
    for info in t.ases() {
        let adj = t.adjacency(info.asn);
        for p in &adj.peers {
            mix(p.0 as u64);
        }
        for p in &adj.providers {
            mix(p.0 as u64);
        }
    }
    h
}

/// The pinned digests. Captured on the pre-rewrite generator and
/// reproduced bit-for-bit by the scratch-reuse/inversion rewrite.
#[test]
fn preset_fingerprints_are_pinned() {
    for (label, cfg, seed, want_as, want_links, want_hash) in [
        (
            "small-7",
            TopologyConfig::small(),
            7u64,
            326,
            1621,
            0x7c80618355b37767u64,
        ),
        (
            "small-42",
            TopologyConfig::small(),
            42u64,
            321,
            1549,
            0x31ed5910e1195d16,
        ),
        (
            "paper-1",
            TopologyConfig::paper_scale(),
            1u64,
            1317,
            26762,
            0x52ce1bce22640ec5,
        ),
    ] {
        let t = Topology::generate(&cfg, seed);
        assert_eq!(t.as_count(), want_as, "{label}: AS count drifted");
        assert_eq!(t.link_count(), want_links, "{label}: link count drifted");
        assert_eq!(
            fingerprint(&t),
            want_hash,
            "{label}: generator fingerprint drifted — the RNG call \
             sequence changed and every seeded artifact changed with it"
        );
    }
}

/// The presets must stay on the dense pair-sampling path: the sparse
/// geometric-skip walk consumes a different RNG stream, and it only
/// engages at >= 512 members per facility (or research networks).
/// Paper scale tops out near ~90 members, far below the line.
#[test]
fn presets_stay_below_sparse_sampling_threshold() {
    let t = Topology::generate(&TopologyConfig::paper_scale(), 1);
    let max = t
        .facilities()
        .iter()
        .map(|f| f.members.len())
        .max()
        .unwrap();
    assert!(
        max < 512,
        "preset facility membership ({max}) crossed the sparse-sampling threshold"
    );
    let research = t
        .ases()
        .iter()
        .filter(|a| matches!(a.as_type, shortcuts_topology::asys::AsType::Research))
        .count();
    assert!(
        research < 512,
        "preset research population ({research}) crossed the threshold"
    );
}

/// `scaled(f)` grows the population as documented: linear in the bulk
/// AS classes, sqrt in tier-1s, with peering probabilities divided by
/// f so per-AS degree stays bounded.
#[test]
fn scaled_config_grows_populations() {
    let base = TopologyConfig::paper_scale();
    let s = TopologyConfig::scaled(4.0);
    assert_eq!(s.n_tier2, base.n_tier2 * 4);
    assert_eq!(s.n_content, base.n_content * 4);
    assert_eq!(s.n_enterprise, base.n_enterprise * 4);
    assert_eq!(s.n_research, base.n_research * 4);
    assert_eq!(s.n_tier1, ((base.n_tier1 as f64) * 2.0).round() as usize);
    assert!((s.peering_scale - base.peering_scale / 4.0).abs() < 1e-12);
    assert!((s.research_mesh_prob - base.research_mesh_prob / 4.0).abs() < 1e-12);
    // Identity: scaled(1) is exactly the paper preset.
    let one = TopologyConfig::scaled(1.0);
    assert_eq!(one.n_tier1, base.n_tier1);
    assert_eq!(one.n_tier2, base.n_tier2);
    assert!((one.peering_scale - base.peering_scale).abs() < 1e-12);
}

/// A research population past the sparse threshold takes the
/// geometric-skip mesh path and still generates deterministically.
#[test]
fn sparse_mesh_path_is_deterministic() {
    let mut cfg = TopologyConfig::paper_scale();
    cfg.n_research = 600;
    cfg.research_mesh_prob = 0.01;
    let t1 = Topology::generate(&cfg, 3);
    let t2 = Topology::generate(&cfg, 3);
    assert_eq!(fingerprint(&t1), fingerprint(&t2));
    let research = t1
        .ases()
        .iter()
        .filter(|a| matches!(a.as_type, shortcuts_topology::asys::AsType::Research))
        .count();
    assert_eq!(research, 600);
}

/// Scaled worlds are self-deterministic (same config + seed => same
/// world), which is all the budget benches need from them.
#[test]
fn scaled_world_generates_deterministically() {
    let cfg = TopologyConfig::scaled(3.0);
    let t1 = Topology::generate(&cfg, 9);
    let t2 = Topology::generate(&cfg, 9);
    assert_eq!(t1.as_count(), t2.as_count());
    assert_eq!(t1.link_count(), t2.link_count());
    assert_eq!(fingerprint(&t1), fingerprint(&t2));
    // And the population actually grew ~3x over the paper preset.
    let paper = Topology::generate(&TopologyConfig::paper_scale(), 9);
    assert!(t1.as_count() > 2 * paper.as_count());
}
