//! Incremental routing repair ≡ full view recompute, under random
//! delta sequences on random multigraphs.
//!
//! After every applied batch, every destination table the router
//! serves — repaired incrementally, epoch-stamped in place, or rebuilt
//! after an eviction — must be entry-for-entry identical to a fresh
//! [`repair::compute_table_view`] sweep under the accumulated
//! [`DeltaView`] (which itself degenerates to the byte-identical base
//! `compute_table` when the view is empty). A budget-starved router
//! runs the same sequence to prove repair composes with CLOCK
//! eviction: an evicted stale table simply misses and is rebuilt
//! fresh under the current view.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shortcuts_geo::CountryCode;
use shortcuts_topology::routing::{repair, table_approx_bytes, Router, RoutingPolicy};
use shortcuts_topology::{AsInfo, AsType, Asn, DeltaView, Topology, TopologyDelta};
use std::sync::Arc;

/// Builds a random topology: `n` ASes with cycling types and `links`
/// random relationships (2:1 transit to peering), derived entirely
/// from `seed` — same construction as the routing equivalence suite.
fn random_topology(n: usize, links: usize, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Topology::builder();
    let types = [
        AsType::Tier1,
        AsType::Tier2,
        AsType::Eyeball,
        AsType::Content,
        AsType::Enterprise,
        AsType::Research,
    ];
    for i in 0..n {
        b.add_as(AsInfo {
            asn: Asn(100 + 7 * i as u32),
            as_type: types[i % types.len()],
            home_country: CountryCode::new("US").unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        });
    }
    for _ in 0..links {
        let a = Asn(100 + 7 * rng.gen_range(0..n) as u32);
        let c = Asn(100 + 7 * rng.gen_range(0..n) as u32);
        match rng.gen_range(0..3u8) {
            0 => b.add_transit(a, c),
            1 => b.add_transit(c, a),
            _ => b.add_peering(a, c),
        }
    }
    b.build()
}

/// All base links of `topo`, canonically ordered.
fn base_links(topo: &Topology) -> Vec<(Asn, Asn)> {
    let mut links = std::collections::BTreeSet::new();
    for info in topo.ases().iter() {
        let adj = topo.adjacency(info.asn);
        for &other in adj
            .providers
            .iter()
            .chain(adj.customers.iter())
            .chain(adj.peers.iter())
        {
            links.insert((info.asn.min(other), info.asn.max(other)));
        }
    }
    links.into_iter().collect()
}

/// A random delta sequence over the base graph: every batch mixes
/// link downs/ups and AS downs/ups, all naming base state (the only
/// kind validation admits).
fn random_batches(topo: &Topology, seed: u64, n_batches: usize) -> Vec<Vec<TopologyDelta>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let links = base_links(topo);
    let asns: Vec<Asn> = topo.ases().iter().map(|a| a.asn).collect();
    let mut batches = Vec::new();
    for _ in 0..n_batches {
        let mut batch = Vec::new();
        for _ in 0..rng.gen_range(1..=3usize) {
            let delta = match rng.gen_range(0..4u8) {
                kind @ (0 | 1) if !links.is_empty() => {
                    let (a, b) = links[rng.gen_range(0..links.len())];
                    if kind == 0 {
                        TopologyDelta::LinkDown { a, b }
                    } else {
                        TopologyDelta::LinkUp { a, b }
                    }
                }
                2 => TopologyDelta::AsDown {
                    asn: asns[rng.gen_range(0..asns.len())],
                },
                _ => TopologyDelta::AsUp {
                    asn: asns[rng.gen_range(0..asns.len())],
                },
            };
            batch.push(delta);
        }
        batches.push(batch);
    }
    batches
}

/// Asserts the router's table toward `dst` is entry-for-entry (and
/// path-for-path) identical to a fresh full sweep under `view`.
fn assert_matches_view(topo: &Topology, router: &Router, view: &DeltaView, dst: Asn, ctx: &str) {
    let got = router.table(dst);
    let want = repair::compute_table_view(topo, view, dst);
    assert_eq!(
        got.reachable_count(),
        want.reachable_count(),
        "{ctx}: reachable toward {dst}"
    );
    for info in topo.ases().iter() {
        assert_eq!(
            got.route(info.asn),
            want.route(info.asn),
            "{ctx}: entry {} toward {dst}",
            info.asn
        );
        assert_eq!(
            got.as_path(info.asn),
            want.as_path(info.asn),
            "{ctx}: path {} toward {dst}",
            info.asn
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core repair contract: any delta sequence, any destination,
    /// repaired ≡ recomputed — with and without a starving byte
    /// budget.
    #[test]
    fn repaired_tables_match_full_recompute(
        n in 2usize..40,
        links in 0usize..120,
        seed in 0u64..u64::MAX,
        n_batches in 1usize..5,
    ) {
        let topo = Arc::new(random_topology(n, links, seed));
        let batches = random_batches(&topo, seed, n_batches);
        let dsts: Vec<Asn> = topo.ases().iter().map(|a| a.asn).step_by(1.max(n / 5)).collect();

        let router = Router::new(Arc::clone(&topo));
        let starved = Router::with_budget(
            Arc::clone(&topo),
            RoutingPolicy::ValleyFree,
            Some(2 * table_approx_bytes(n)),
        );
        // Warm every destination so the batches hit *resident* tables
        // (the repair path), not cold misses.
        router.precompute(&dsts);

        let mut view = DeltaView::empty();
        for (i, batch) in batches.iter().enumerate() {
            view.apply(&topo, batch);
            router.apply_delta(batch);
            starved.apply_delta(batch);
            for &dst in &dsts {
                assert_matches_view(&topo, &router, &view, dst, &format!("batch {i}"));
                assert_matches_view(&topo, &starved, &view, dst, &format!("batch {i} starved"));
            }
        }
    }

    /// The ablation policy has no incremental form; its stale tables
    /// must still come back exactly equal to the view sweep.
    #[test]
    fn shortest_path_tables_rebuild_under_churn(
        n in 2usize..24,
        links in 0usize..60,
        seed in 0u64..u64::MAX,
    ) {
        let topo = Arc::new(random_topology(n, links, seed));
        let batches = random_batches(&topo, seed, 2);
        let router = Router::with_policy(Arc::clone(&topo), RoutingPolicy::ShortestPath);
        let dst = Asn(100);
        router.table(dst);
        let mut view = DeltaView::empty();
        for batch in &batches {
            view.apply(&topo, batch);
            router.apply_delta(batch);
            let got = router.table(dst);
            let want = repair::compute_table_shortest_view(&topo, &view, dst);
            for info in topo.ases().iter() {
                prop_assert_eq!(got.route(info.asn), want.route(info.asn), "{}", info.asn);
            }
        }
    }
}

#[test]
fn unaffected_tables_are_stamped_not_reswept() {
    // A chain 100 ← 107 ← 114 plus an isolated island 121—128: downing
    // the island link cannot touch any chain table, so repairing the
    // chain tables must do zero sweep work.
    let mut b = Topology::builder();
    for (i, t) in [
        AsType::Tier1,
        AsType::Tier2,
        AsType::Eyeball,
        AsType::Tier2,
        AsType::Eyeball,
    ]
    .iter()
    .enumerate()
    {
        b.add_as(AsInfo {
            asn: Asn(100 + 7 * i as u32),
            as_type: *t,
            home_country: CountryCode::new("US").unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        });
    }
    b.add_transit(Asn(107), Asn(100));
    b.add_transit(Asn(114), Asn(107));
    b.add_transit(Asn(128), Asn(121));
    let topo = Arc::new(b.build());
    let router = Router::new(Arc::clone(&topo));
    router.precompute(&[Asn(100), Asn(107), Asn(114)]);

    router.apply_delta(&[TopologyDelta::LinkDown {
        a: Asn(121),
        b: Asn(128),
    }]);
    let view = router.current_view();
    for dst in [100u32, 107, 114] {
        assert_matches_view(&topo, &router, &view, Asn(dst), "island down");
    }
    let stats = router.stats();
    assert_eq!(stats.tables_repaired, 0, "chain tables only re-stamp");
    assert_eq!(stats.full_rebuilds, 0);
    assert_eq!(stats.entries_rescanned, 0);

    // Downing a chain link now really repairs the affected tables.
    router.apply_delta(&[TopologyDelta::LinkDown {
        a: Asn(100),
        b: Asn(107),
    }]);
    let view = router.current_view();
    for dst in [100u32, 107, 114] {
        assert_matches_view(&topo, &router, &view, Asn(dst), "chain down");
    }
    assert!(router.stats().tables_repaired > 0);
}

#[test]
fn evicted_stale_table_rebuilds_fresh_under_current_view() {
    let topo = Arc::new(random_topology(12, 30, 9));
    // Room for a single table: every second lookup evicts the first.
    let router = Router::with_budget(
        Arc::clone(&topo),
        RoutingPolicy::ValleyFree,
        Some(table_approx_bytes(12) + 8),
    );
    let (a, b) = base_links(&topo)[0];
    let dsts: Vec<Asn> = topo.ases().iter().map(|x| x.asn).take(4).collect();
    for &d in &dsts {
        router.table(d);
    }
    router.apply_delta(&[TopologyDelta::LinkDown { a, b }]);
    let view = router.current_view();
    for &d in &dsts {
        assert_matches_view(&topo, &router, &view, d, "budget 1 table");
    }
    assert!(router.stats().evictions > 0);
}
