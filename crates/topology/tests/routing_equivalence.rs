//! Equivalence of the flat bucket-queue routing core against the
//! heap-based reference implementation (`routing::oracle`), plus the
//! valley-free property, on randomly generated topologies.
//!
//! The flat implementation claims *bit-identical* tables — same
//! (class, path length, next hop) per AS — for every destination. The
//! proptests here throw random multigraph-free topologies at both
//! implementations and compare entry for entry; a second deterministic
//! test does the same over the full generator at `small` scale. These
//! run in the default `cargo test` tier (CI's tier-1 gate).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shortcuts_geo::CountryCode;
use shortcuts_topology::routing::{self, oracle, RouteClass};
use shortcuts_topology::{AsInfo, AsType, Asn, Topology, TopologyConfig};

/// Builds a random topology: `n` ASes with cycling types and `links`
/// random relationships (2:1 transit to peering), derived entirely
/// from `seed`.
///
/// With `clean` set, each AS pair gets at most one relationship — the
/// well-formed shape real AS graphs (and the generator) have, and the
/// one on which "a hop has exactly one type" holds, as the valley-free
/// checker requires. Without it, pairs may carry conflicting
/// relationships (mutual transit, transit over peering) — still a
/// legal input whose tables must match the oracle, exercising the
/// degenerate shapes dirty real-world relationship data produces.
fn random_topology(n: usize, links: usize, seed: u64, clean: bool) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Topology::builder();
    let types = [
        AsType::Tier1,
        AsType::Tier2,
        AsType::Eyeball,
        AsType::Content,
        AsType::Enterprise,
        AsType::Research,
    ];
    for i in 0..n {
        b.add_as(AsInfo {
            // Non-contiguous ASNs so NodeId and ASN never coincide.
            asn: Asn(100 + 7 * i as u32),
            as_type: types[i % types.len()],
            home_country: CountryCode::new("US").unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        });
    }
    let mut linked = std::collections::HashSet::new();
    for _ in 0..links {
        let a = Asn(100 + 7 * rng.gen_range(0..n) as u32);
        let c = Asn(100 + 7 * rng.gen_range(0..n) as u32);
        if clean && !linked.insert((a.min(c), a.max(c))) {
            continue;
        }
        match rng.gen_range(0..3u8) {
            0 => b.add_transit(a, c),
            1 => b.add_transit(c, a),
            _ => b.add_peering(a, c),
        }
    }
    b.build()
}

/// Asserts the flat table toward `dst` matches the oracle entry for
/// entry (and therefore in reachable count).
fn assert_tables_match(topo: &Topology, dst: Asn) {
    let flat = routing::compute_table(topo, dst);
    let reference = oracle::compute_table(topo, dst);
    assert_eq!(
        flat.reachable_count(),
        reference.len(),
        "reachable mismatch toward {dst}"
    );
    for info in topo.ases() {
        assert_eq!(
            flat.route(info.asn),
            reference.get(&info.asn),
            "entry mismatch for {} toward {dst}",
            info.asn
        );
    }
}

/// Asserts `path` climbs providers, crosses at most one peer link, and
/// then only descends customers.
fn assert_valley_free(topo: &Topology, path: &[Asn]) {
    let mut stage = 0u8; // 0 = up, 1 = peer, 2 = down
    for w in path.windows(2) {
        let adj = topo.adjacency(w[0]);
        let step = if adj.providers.contains(&w[1]) {
            0
        } else if adj.peers.contains(&w[1]) {
            1
        } else if adj.customers.contains(&w[1]) {
            2
        } else {
            panic!("path {path:?} uses non-existent link {} -> {}", w[0], w[1]);
        };
        assert!(step >= stage, "valley in {path:?} at {} -> {}", w[0], w[1]);
        if step == 1 {
            assert!(stage < 1, "two peer hops in {path:?}");
        }
        stage = step;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Valley-free tables from the bucket-queue sweeps are
    /// entry-for-entry identical to the heap oracle.
    #[test]
    fn flat_valley_free_tables_match_heap_oracle(
        n in 2usize..48,
        links in 0usize..140,
        seed in 0u64..u64::MAX,
    ) {
        let topo = random_topology(n, links, seed, false);
        // Every AS as destination keeps the check exhaustive on the
        // small instances where disagreement is easiest to localize.
        for info in topo.ases() {
            assert_tables_match(&topo, info.asn);
        }
    }

    /// Shortest-path (ablation) tables match their oracle too.
    #[test]
    fn flat_shortest_tables_match_heap_oracle(
        n in 2usize..48,
        links in 0usize..140,
        seed in 0u64..u64::MAX,
    ) {
        let topo = random_topology(n, links, seed, false);
        for info in topo.ases() {
            let flat = routing::compute_table_shortest(&topo, info.asn);
            let reference = oracle::compute_table_shortest(&topo, info.asn);
            prop_assert_eq!(flat.reachable_count(), reference.len());
            for src in topo.ases() {
                prop_assert_eq!(flat.route(src.asn), reference.get(&src.asn));
            }
        }
    }

    /// Every reconstructed policy path is valley-free, and its length
    /// matches the table's path_len.
    #[test]
    fn sampled_paths_are_valley_free(
        n in 2usize..48,
        links in 0usize..140,
        seed in 0u64..u64::MAX,
    ) {
        let topo = random_topology(n, links, seed, true);
        for dst in topo.ases().iter().step_by(3) {
            let table = routing::compute_table(&topo, dst.asn);
            for src in topo.ases() {
                let Some(path) = table.as_path(src.asn) else { continue };
                assert_valley_free(&topo, &path);
                let entry = table.route(src.asn).expect("path implies entry");
                prop_assert_eq!(path.len() as u32 - 1, entry.path_len());
                // A customer-class route must start on a provider link
                // (the entry's class describes the first hop).
                if path.len() > 1 {
                    let adj = topo.adjacency(src.asn);
                    match entry.class() {
                        RouteClass::Customer => {
                            prop_assert!(adj.customers.contains(&entry.next_hop()))
                        }
                        RouteClass::Peer => prop_assert!(adj.peers.contains(&entry.next_hop())),
                        RouteClass::Provider => {
                            prop_assert!(adj.providers.contains(&entry.next_hop()))
                        }
                    }
                }
            }
        }
    }
}

/// The same equivalence over the real generator at `small` scale: the
/// exact graph shapes (tier-1 clique, regional tier-2s, stub fans) the
/// campaign routes over.
#[test]
fn generated_topology_tables_match_oracle() {
    for seed in [11u64, 404] {
        let topo = Topology::generate(&TopologyConfig::small(), seed);
        for &dst in topo.eyeball_asns().iter().step_by(11) {
            assert_tables_match(&topo, dst);
        }
        // Also a transit destination, whose table has a huge customer
        // cone, and an unknown destination (degenerate table).
        let tier1 = topo.asns_of_type(AsType::Tier1)[0];
        assert_tables_match(&topo, tier1);
        assert_tables_match(&topo, Asn(u32::MAX));
    }
}

/// Parallel warmup produces the same cached tables as on-demand
/// computation, destination for destination.
#[test]
fn precompute_matches_on_demand_on_generated_topology() {
    let topo = std::sync::Arc::new(Topology::generate(&TopologyConfig::small(), 77));
    let eyes: Vec<Asn> = topo.eyeball_asns().iter().step_by(7).copied().collect();
    let warm = routing::Router::new(std::sync::Arc::clone(&topo));
    warm.precompute(&eyes);
    assert_eq!(warm.cached_tables(), eyes.len());
    let cold = routing::Router::new(std::sync::Arc::clone(&topo));
    for &dst in &eyes {
        let a = warm.table(dst);
        let b = cold.table(dst);
        assert_eq!(a.reachable_count(), b.reachable_count(), "dst {dst}");
        for info in topo.ases() {
            assert_eq!(a.route(info.asn), b.route(info.asn), "dst {dst}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// A budget-starved router — room for only ~2 resident tables, so
    /// almost every access evicts and later re-derives — still serves
    /// entry-identical tables to the heap oracle under arbitrary
    /// destination interleavings. This is the routing half of the
    /// memory-budget contract: eviction bounds residency, never
    /// results.
    #[test]
    fn starved_router_serves_oracle_tables(
        n in 4usize..32,
        links in 4usize..100,
        seed in 0u64..u64::MAX,
        accesses in proptest::collection::vec(0usize..64, 1..48),
    ) {
        use shortcuts_topology::routing::{Router, RoutingPolicy};
        let topo = std::sync::Arc::new(random_topology(n, links, seed, false));
        let budget = 2 * routing::table_approx_bytes(topo.node_index().len());
        let router = Router::with_budget(
            std::sync::Arc::clone(&topo),
            RoutingPolicy::ValleyFree,
            Some(budget),
        );
        let asns: Vec<Asn> = topo.ases().iter().map(|a| a.asn).collect();
        let mut distinct = std::collections::BTreeSet::new();
        for &a in &accesses {
            let dst = asns[a % asns.len()];
            distinct.insert(dst);
            let table = router.table(dst);
            let reference = oracle::compute_table(&topo, dst);
            prop_assert_eq!(table.reachable_count(), reference.len());
            for src in topo.ases() {
                prop_assert_eq!(table.route(src.asn), reference.get(&src.asn));
            }
        }
        // With more distinct destinations than the budget holds, the
        // starved cache must actually have evicted — the equivalence
        // above covered the recompute path, not just warm hits.
        if distinct.len() > 2 {
            prop_assert!(router.stats().evictions > 0);
        }
    }
}
