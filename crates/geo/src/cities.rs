//! Embedded world-city database.
//!
//! The topology generator places AS points-of-presence, colocation
//! facilities, RIPE Atlas probes, PlanetLab sites and Looking Glasses at
//! cities drawn from this table. It covers ~190 cities in ~95 countries on
//! all six continents, with the major Internet-hub metros (the ones
//! hosting the paper's Table-1 facilities: London, Amsterdam, Frankfurt,
//! New York, Atlanta, Hamburg, Brussels, ...) flagged as hubs.
//!
//! Coordinates are approximate city centers; population weights are rough
//! metro populations in millions and only used for weighted sampling.

use crate::coord::GeoPoint;
use crate::country::{Continent, CountryCode};
use std::collections::HashMap;

/// Index of a city inside a [`CityDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CityId(pub u32);

/// A city record.
#[derive(Debug, Clone)]
pub struct City {
    /// Identifier within the owning [`CityDb`].
    pub id: CityId,
    /// City name (unique within the database).
    pub name: &'static str,
    /// Country the city belongs to.
    pub country: CountryCode,
    /// Continent the city belongs to.
    pub continent: Continent,
    /// Location of the city center.
    pub location: GeoPoint,
    /// Approximate metro population, millions (sampling weight).
    pub population_m: f64,
    /// Whether the city is a major Internet interconnection hub.
    pub is_hub: bool,
}

/// Row format of the static table below.
type Row = (&'static str, &'static str, Continent, f64, f64, f64, bool);

use Continent::{Africa, Asia, Europe, NorthAmerica, Oceania, SouthAmerica};

/// The embedded city table: (name, country, continent, lat, lon, pop_m, hub).
#[rustfmt::skip]
static CITY_TABLE: &[Row] = &[
    // --- Europe ------------------------------------------------------
    ("London",        "GB", Europe, 51.5074,  -0.1278, 14.3, true),
    ("Manchester",    "GB", Europe, 53.4808,  -2.2426,  2.8, false),
    ("Amsterdam",     "NL", Europe, 52.3676,   4.9041,  2.5, true),
    ("Rotterdam",     "NL", Europe, 51.9244,   4.4777,  1.0, false),
    ("Frankfurt",     "DE", Europe, 50.1109,   8.6821,  2.3, true),
    ("Berlin",        "DE", Europe, 52.5200,  13.4050,  3.7, false),
    ("Hamburg",       "DE", Europe, 53.5511,   9.9937,  1.8, true),
    ("Munich",        "DE", Europe, 48.1351,  11.5820,  1.5, false),
    ("Duesseldorf",   "DE", Europe, 51.2277,   6.7735,  0.6, false),
    ("Paris",         "FR", Europe, 48.8566,   2.3522, 11.0, true),
    ("Marseille",     "FR", Europe, 43.2965,   5.3698,  1.6, true),
    ("Lyon",          "FR", Europe, 45.7640,   4.8357,  1.4, false),
    ("Brussels",      "BE", Europe, 50.8503,   4.3517,  1.2, true),
    ("Vienna",        "AT", Europe, 48.2082,  16.3738,  1.9, true),
    ("Zurich",        "CH", Europe, 47.3769,   8.5417,  1.4, true),
    ("Geneva",        "CH", Europe, 46.2044,   6.1432,  0.6, false),
    ("Milan",         "IT", Europe, 45.4642,   9.1900,  3.1, true),
    ("Rome",          "IT", Europe, 41.9028,  12.4964,  4.3, false),
    ("Madrid",        "ES", Europe, 40.4168,  -3.7038,  6.6, true),
    ("Barcelona",     "ES", Europe, 41.3874,   2.1686,  5.6, false),
    ("Lisbon",        "PT", Europe, 38.7223,  -9.1393,  2.9, false),
    ("Dublin",        "IE", Europe, 53.3498,  -6.2603,  1.4, true),
    ("Copenhagen",    "DK", Europe, 55.6761,  12.5683,  1.3, true),
    ("Stockholm",     "SE", Europe, 59.3293,  18.0686,  1.6, true),
    ("Oslo",          "NO", Europe, 59.9139,  10.7522,  1.0, false),
    ("Helsinki",      "FI", Europe, 60.1699,  24.9384,  1.3, false),
    ("Warsaw",        "PL", Europe, 52.2297,  21.0122,  1.8, true),
    ("Prague",        "CZ", Europe, 50.0755,  14.4378,  1.3, true),
    ("Bratislava",    "SK", Europe, 48.1486,  17.1077,  0.4, false),
    ("Budapest",      "HU", Europe, 47.4979,  19.0402,  1.8, false),
    ("Bucharest",     "RO", Europe, 44.4268,  26.1025,  1.8, false),
    ("Sofia",         "BG", Europe, 42.6977,  23.3219,  1.2, false),
    ("Athens",        "GR", Europe, 37.9838,  23.7275,  3.2, false),
    ("Belgrade",      "RS", Europe, 44.7866,  20.4489,  1.4, false),
    ("Zagreb",        "HR", Europe, 45.8150,  15.9819,  0.8, false),
    ("Ljubljana",     "SI", Europe, 46.0569,  14.5058,  0.3, false),
    ("Kyiv",          "UA", Europe, 50.4501,  30.5234,  3.0, false),
    ("Moscow",        "RU", Europe, 55.7558,  37.6173, 12.5, true),
    ("SaintPetersburg","RU", Europe, 59.9311, 30.3609,  5.4, false),
    ("Istanbul",      "TR", Europe, 41.0082,  28.9784, 15.5, false),
    ("Riga",          "LV", Europe, 56.9496,  24.1052,  0.6, false),
    ("Vilnius",       "LT", Europe, 54.6872,  25.2797,  0.5, false),
    ("Tallinn",       "EE", Europe, 59.4370,  24.7536,  0.4, false),
    ("Reykjavik",     "IS", Europe, 64.1466, -21.9426,  0.2, false),
    ("Luxembourg",    "LU", Europe, 49.6116,   6.1319,  0.1, false),
    ("Nicosia",       "CY", Europe, 35.1856,  33.3823,  0.3, false),
    ("Valletta",      "MT", Europe, 35.8989,  14.5146,  0.2, false),
    ("Chisinau",      "MD", Europe, 47.0105,  28.8638,  0.7, false),
    ("Minsk",         "BY", Europe, 53.9006,  27.5590,  2.0, false),
    ("Sarajevo",      "BA", Europe, 43.8563,  18.4131,  0.4, false),
    ("Skopje",        "MK", Europe, 41.9973,  21.4280,  0.5, false),
    ("Tirana",        "AL", Europe, 41.3275,  19.8187,  0.5, false),

    // --- North America -----------------------------------------------
    ("NewYork",       "US", NorthAmerica, 40.7128,  -74.0060, 19.8, true),
    ("Ashburn",       "US", NorthAmerica, 39.0438,  -77.4874,  0.4, true),
    ("Atlanta",       "US", NorthAmerica, 33.7490,  -84.3880,  6.1, true),
    ("Miami",         "US", NorthAmerica, 25.7617,  -80.1918,  6.2, true),
    ("Chicago",       "US", NorthAmerica, 41.8781,  -87.6298,  9.5, true),
    ("Dallas",        "US", NorthAmerica, 32.7767,  -96.7970,  7.6, true),
    ("LosAngeles",    "US", NorthAmerica, 34.0522, -118.2437, 13.2, true),
    ("SanJose",       "US", NorthAmerica, 37.3382, -121.8863,  2.0, true),
    ("Seattle",       "US", NorthAmerica, 47.6062, -122.3321,  4.0, true),
    ("Denver",        "US", NorthAmerica, 39.7392, -104.9903,  2.9, false),
    ("Houston",       "US", NorthAmerica, 29.7604,  -95.3698,  7.1, false),
    ("Boston",        "US", NorthAmerica, 42.3601,  -71.0589,  4.9, false),
    ("Phoenix",       "US", NorthAmerica, 33.4484, -112.0740,  4.9, false),
    ("Minneapolis",   "US", NorthAmerica, 44.9778,  -93.2650,  3.7, false),
    ("Toronto",       "CA", NorthAmerica, 43.6532,  -79.3832,  6.2, true),
    ("Montreal",      "CA", NorthAmerica, 45.5017,  -73.5673,  4.2, false),
    ("Vancouver",     "CA", NorthAmerica, 49.2827, -123.1207,  2.6, false),
    ("MexicoCity",    "MX", NorthAmerica, 19.4326,  -99.1332, 21.8, false),
    ("Guadalajara",   "MX", NorthAmerica, 20.6597, -103.3496,  5.3, false),
    ("GuatemalaCity", "GT", NorthAmerica, 14.6349,  -90.5069,  3.0, false),
    ("SanSalvador",   "SV", NorthAmerica, 13.6929,  -89.2182,  1.1, false),
    ("Tegucigalpa",   "HN", NorthAmerica, 14.0723,  -87.1921,  1.2, false),
    ("Managua",       "NI", NorthAmerica, 12.1150,  -86.2362,  1.1, false),
    ("SanJoseCR",     "CR", NorthAmerica,  9.9281,  -84.0907,  1.4, false),
    ("PanamaCity",    "PA", NorthAmerica,  8.9824,  -79.5199,  1.9, false),
    ("Havana",        "CU", NorthAmerica, 23.1136,  -82.3666,  2.1, false),
    ("SantoDomingo",  "DO", NorthAmerica, 18.4861,  -69.9312,  3.3, false),
    ("Kingston",      "JM", NorthAmerica, 17.9712,  -76.7936,  1.2, false),
    ("PortOfSpain",   "TT", NorthAmerica, 10.6596,  -61.5019,  0.5, false),

    // --- South America -----------------------------------------------
    ("SaoPaulo",      "BR", SouthAmerica, -23.5505, -46.6333, 22.0, true),
    ("RioDeJaneiro",  "BR", SouthAmerica, -22.9068, -43.1729, 13.5, false),
    ("Fortaleza",     "BR", SouthAmerica,  -3.7319, -38.5267,  4.1, true),
    ("BuenosAires",   "AR", SouthAmerica, -34.6037, -58.3816, 15.2, false),
    ("Santiago",      "CL", SouthAmerica, -33.4489, -70.6693,  6.8, false),
    ("Bogota",        "CO", SouthAmerica,   4.7110, -74.0721, 10.9, false),
    ("Medellin",      "CO", SouthAmerica,   6.2442, -75.5812,  4.0, false),
    ("Lima",          "PE", SouthAmerica, -12.0464, -77.0428, 10.7, false),
    ("Quito",         "EC", SouthAmerica,  -0.1807, -78.4678,  2.0, false),
    ("Caracas",       "VE", SouthAmerica,  10.4806, -66.9036,  2.9, false),
    ("Montevideo",    "UY", SouthAmerica, -34.9011, -56.1645,  1.8, false),
    ("Asuncion",      "PY", SouthAmerica, -25.2637, -57.5759,  2.3, false),
    ("LaPaz",         "BO", SouthAmerica, -16.4897, -68.1193,  1.9, false),
    ("Georgetown",    "GY", SouthAmerica,   6.8013, -58.1551,  0.2, false),

    // --- Asia ---------------------------------------------------------
    ("Tokyo",         "JP", Asia, 35.6762, 139.6503, 37.4, true),
    ("Osaka",         "JP", Asia, 34.6937, 135.5023, 19.2, false),
    ("Seoul",         "KR", Asia, 37.5665, 126.9780, 25.6, true),
    ("Beijing",       "CN", Asia, 39.9042, 116.4074, 20.9, false),
    ("Shanghai",      "CN", Asia, 31.2304, 121.4737, 27.1, false),
    ("Guangzhou",     "CN", Asia, 23.1291, 113.2644, 18.7, false),
    ("HongKong",      "HK", Asia, 22.3193, 114.1694,  7.5, true),
    ("Taipei",        "TW", Asia, 25.0330, 121.5654,  7.0, false),
    ("Singapore",     "SG", Asia,  1.3521, 103.8198,  5.9, true),
    ("KualaLumpur",   "MY", Asia,  3.1390, 101.6869,  8.0, false),
    ("Jakarta",       "ID", Asia, -6.2088, 106.8456, 34.5, false),
    ("Bangkok",       "TH", Asia, 13.7563, 100.5018, 10.7, false),
    ("Manila",        "PH", Asia, 14.5995, 120.9842, 13.9, false),
    ("Hanoi",         "VN", Asia, 21.0285, 105.8542,  8.1, false),
    ("HoChiMinh",     "VN", Asia, 10.8231, 106.6297,  9.3, false),
    ("PhnomPenh",     "KH", Asia, 11.5564, 104.9282,  2.1, false),
    ("Yangon",        "MM", Asia, 16.8661,  96.1951,  5.4, false),
    ("Dhaka",         "BD", Asia, 23.8103,  90.4125, 21.7, false),
    ("Mumbai",        "IN", Asia, 19.0760,  72.8777, 20.7, true),
    ("Delhi",         "IN", Asia, 28.7041,  77.1025, 31.2, false),
    ("Bangalore",     "IN", Asia, 12.9716,  77.5946, 12.8, false),
    ("Chennai",       "IN", Asia, 13.0827,  80.2707, 11.2, true),
    ("Karachi",       "PK", Asia, 24.8607,  67.0011, 16.5, false),
    ("Lahore",        "PK", Asia, 31.5497,  74.3436, 12.6, false),
    ("Colombo",       "LK", Asia,  6.9271,  79.8612,  2.3, false),
    ("Kathmandu",     "NP", Asia, 27.7172,  85.3240,  1.5, false),
    ("Kabul",         "AF", Asia, 34.5553,  69.2075,  4.4, false),
    ("Tehran",        "IR", Asia, 35.6892,  51.3890,  9.1, false),
    ("Baghdad",       "IQ", Asia, 33.3152,  44.3661,  7.5, false),
    ("Riyadh",        "SA", Asia, 24.7136,  46.6753,  7.7, false),
    ("Jeddah",        "SA", Asia, 21.4858,  39.1925,  4.7, false),
    ("Dubai",         "AE", Asia, 25.2048,  55.2708,  3.5, true),
    ("Doha",          "QA", Asia, 25.2854,  51.5310,  2.4, false),
    ("KuwaitCity",    "KW", Asia, 29.3759,  47.9774,  3.1, false),
    ("Manama",        "BH", Asia, 26.2285,  50.5860,  0.7, false),
    ("Muscat",        "OM", Asia, 23.5880,  58.3829,  1.6, false),
    ("Amman",         "JO", Asia, 31.9454,  35.9284,  2.1, false),
    ("Beirut",        "LB", Asia, 33.8938,  35.5018,  2.4, false),
    ("TelAviv",       "IL", Asia, 32.0853,  34.7818,  4.2, false),
    ("Ankara",        "TR", Asia, 39.9334,  32.8597,  5.7, false),
    ("Baku",          "AZ", Asia, 40.4093,  49.8671,  2.3, false),
    ("Tbilisi",       "GE", Asia, 41.7151,  44.8271,  1.2, false),
    ("Yerevan",       "AM", Asia, 40.1792,  44.4991,  1.1, false),
    ("Almaty",        "KZ", Asia, 43.2220,  76.8512,  1.9, false),
    ("Tashkent",      "UZ", Asia, 41.2995,  69.2401,  2.6, false),
    ("Bishkek",       "KG", Asia, 42.8746,  74.5698,  1.1, false),
    ("UlaanBaatar",   "MN", Asia, 47.8864, 106.9057,  1.5, false),
    ("Novosibirsk",   "RU", Asia, 55.0084,  82.9357,  1.6, false),

    // --- Oceania ------------------------------------------------------
    ("Sydney",        "AU", Oceania, -33.8688, 151.2093,  5.3, true),
    ("Melbourne",     "AU", Oceania, -37.8136, 144.9631,  5.1, false),
    ("Brisbane",      "AU", Oceania, -27.4698, 153.0251,  2.5, false),
    ("Perth",         "AU", Oceania, -31.9505, 115.8605,  2.1, false),
    ("Auckland",      "NZ", Oceania, -36.8485, 174.7633,  1.7, false),
    ("Wellington",    "NZ", Oceania, -41.2865, 174.7762,  0.4, false),
    ("Suva",          "FJ", Oceania, -18.1248, 178.4501,  0.2, false),
    ("PortMoresby",   "PG", Oceania,  -9.4438, 147.1803,  0.4, false),

    // --- Africa -------------------------------------------------------
    ("Johannesburg",  "ZA", Africa, -26.2041,  28.0473,  5.8, true),
    ("CapeTown",      "ZA", Africa, -33.9249,  18.4241,  4.6, false),
    ("Cairo",         "EG", Africa,  30.0444,  31.2357, 20.9, false),
    ("Alexandria",    "EG", Africa,  31.2001,  29.9187,  5.2, false),
    ("Lagos",         "NG", Africa,   6.5244,   3.3792, 14.8, false),
    ("Abuja",         "NG", Africa,   9.0765,   7.3986,  3.6, false),
    ("Nairobi",       "KE", Africa,  -1.2921,  36.8219,  4.7, false),
    ("Mombasa",       "KE", Africa,  -4.0435,  39.6682,  1.2, false),
    ("Accra",         "GH", Africa,   5.6037,  -0.1870,  2.5, false),
    ("Abidjan",       "CI", Africa,   5.3600,  -4.0083,  5.3, false),
    ("Dakar",         "SN", Africa,  14.7167, -17.4677,  3.1, false),
    ("Casablanca",    "MA", Africa,  33.5731,  -7.5898,  3.7, false),
    ("Tunis",         "TN", Africa,  36.8065,  10.1815,  2.4, false),
    ("Algiers",       "DZ", Africa,  36.7538,   3.0588,  2.9, false),
    ("Tripoli",       "LY", Africa,  32.8872,  13.1913,  1.2, false),
    ("Khartoum",      "SD", Africa,  15.5007,  32.5599,  5.8, false),
    ("AddisAbaba",    "ET", Africa,   9.0300,  38.7400,  5.0, false),
    ("Kampala",       "UG", Africa,   0.3476,  32.5825,  3.5, false),
    ("DarEsSalaam",   "TZ", Africa,  -6.7924,  39.2083,  7.0, false),
    ("Kigali",        "RW", Africa,  -1.9441,  30.0619,  1.2, false),
    ("Lusaka",        "ZM", Africa, -15.3875,  28.3228,  2.9, false),
    ("Harare",        "ZW", Africa, -17.8252,  31.0335,  1.5, false),
    ("Gaborone",      "BW", Africa, -24.6282,  25.9231,  0.3, false),
    ("Windhoek",      "NA", Africa, -22.5594,  17.0832,  0.4, false),
    ("Maputo",        "MZ", Africa, -25.9692,  32.5732,  1.1, false),
    ("Antananarivo",  "MG", Africa, -18.8792,  47.5079,  3.4, false),
    ("PortLouis",     "MU", Africa, -20.1609,  57.5012,  0.1, false),
    ("Kinshasa",      "CD", Africa,  -4.4419,  15.2663, 14.3, false),
    ("Luanda",        "AO", Africa,  -8.8390,  13.2894,  8.3, false),
    ("Douala",        "CM", Africa,   4.0511,   9.7679,  3.8, false),
];

/// The city database: an immutable, indexed view over [`CITY_TABLE`].
#[derive(Debug, Clone)]
pub struct CityDb {
    cities: Vec<City>,
    by_name: HashMap<&'static str, CityId>,
    by_country: HashMap<CountryCode, Vec<CityId>>,
}

impl CityDb {
    /// Builds the database from the embedded table.
    ///
    /// Panics if the embedded table is internally inconsistent (duplicate
    /// names or invalid coordinates) — that is a compile-time data bug,
    /// caught by the test suite.
    pub fn embedded() -> Self {
        let mut cities = Vec::with_capacity(CITY_TABLE.len());
        let mut by_name = HashMap::new();
        let mut by_country: HashMap<CountryCode, Vec<CityId>> = HashMap::new();
        for (i, &(name, cc, continent, lat, lon, pop, hub)) in CITY_TABLE.iter().enumerate() {
            let id = CityId(i as u32);
            let country = CountryCode::new(cc).expect("embedded country code invalid");
            let location = GeoPoint::new(lat, lon).expect("embedded coordinates invalid");
            let prev = by_name.insert(name, id);
            assert!(prev.is_none(), "duplicate embedded city name: {name}");
            by_country.entry(country).or_default().push(id);
            cities.push(City {
                id,
                name,
                country,
                continent,
                location,
                population_m: pop,
                is_hub: hub,
            });
        }
        CityDb {
            cities,
            by_name,
            by_country,
        }
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// Whether the database is empty (never true for [`CityDb::embedded`]).
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// Looks up a city by id.
    pub fn get(&self, id: CityId) -> &City {
        &self.cities[id.0 as usize]
    }

    /// Looks up a city by its unique name.
    pub fn by_name(&self, name: &str) -> Option<&City> {
        self.by_name.get(name).map(|&id| self.get(id))
    }

    /// All cities, in id order.
    pub fn iter(&self) -> impl Iterator<Item = &City> {
        self.cities.iter()
    }

    /// Cities in a given country, in id order.
    pub fn in_country(&self, country: CountryCode) -> &[CityId] {
        self.by_country
            .get(&country)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All distinct country codes, sorted.
    pub fn countries(&self) -> Vec<CountryCode> {
        let mut v: Vec<_> = self.by_country.keys().copied().collect();
        v.sort();
        v
    }

    /// All hub cities, in id order.
    pub fn hubs(&self) -> Vec<CityId> {
        self.cities
            .iter()
            .filter(|c| c.is_hub)
            .map(|c| c.id)
            .collect()
    }

    /// The city nearest to `point` (by great-circle distance).
    pub fn nearest(&self, point: &GeoPoint) -> &City {
        self.cities
            .iter()
            .min_by(|a, b| {
                a.location
                    .distance_km(point)
                    .partial_cmp(&b.location.distance_km(point))
                    .expect("distances are finite")
            })
            .expect("embedded database is non-empty")
    }

    /// Samples a city id weighted by metro population.
    pub fn sample_weighted<R: rand::Rng>(&self, rng: &mut R) -> CityId {
        let total: f64 = self.cities.iter().map(|c| c.population_m).sum();
        let mut x = rng.gen_range(0.0..total);
        for c in &self.cities {
            if x < c.population_m {
                return c.id;
            }
            x -= c.population_m;
        }
        // Floating-point slack: fall back to the last city.
        self.cities.last().expect("non-empty").id
    }
}

impl Default for CityDb {
    fn default() -> Self {
        CityDb::embedded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn embedded_db_is_well_formed() {
        let db = CityDb::embedded();
        assert!(db.len() >= 150, "expected >=150 cities, got {}", db.len());
        assert!(!db.is_empty());
    }

    #[test]
    fn covers_many_countries_and_all_continents() {
        let db = CityDb::embedded();
        let countries = db.countries();
        assert!(
            countries.len() >= 90,
            "expected >=90 countries, got {}",
            countries.len()
        );
        use std::collections::HashSet;
        let continents: HashSet<_> = db.iter().map(|c| c.continent).collect();
        assert_eq!(continents.len(), 6);
    }

    #[test]
    fn table1_hub_cities_are_present_and_hubs() {
        let db = CityDb::embedded();
        for name in [
            "London",
            "Amsterdam",
            "Frankfurt",
            "Hamburg",
            "Brussels",
            "Atlanta",
            "NewYork",
        ] {
            let c = db.by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(c.is_hub, "{name} should be a hub");
        }
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        let db = CityDb::embedded();
        let c = db.by_name("Tokyo").unwrap();
        assert_eq!(db.get(c.id).name, "Tokyo");
        assert!(db.by_name("Atlantis").is_none());
    }

    #[test]
    fn in_country_contains_expected_cities() {
        let db = CityDb::embedded();
        let de = CountryCode::new("DE").unwrap();
        let names: Vec<_> = db.in_country(de).iter().map(|&i| db.get(i).name).collect();
        assert!(names.contains(&"Frankfurt"));
        assert!(names.contains(&"Hamburg"));
        let zz = CountryCode::new("ZZ").unwrap();
        assert!(db.in_country(zz).is_empty());
    }

    #[test]
    fn nearest_finds_exact_city() {
        let db = CityDb::embedded();
        let tokyo = db.by_name("Tokyo").unwrap();
        assert_eq!(db.nearest(&tokyo.location).name, "Tokyo");
    }

    #[test]
    fn nearest_finds_close_city() {
        let db = CityDb::embedded();
        // A point slightly off London should resolve to London.
        let p = GeoPoint::new(51.6, -0.2).unwrap();
        assert_eq!(db.nearest(&p).name, "London");
    }

    #[test]
    fn weighted_sampling_prefers_big_cities() {
        let db = CityDb::embedded();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut tokyo = 0usize;
        let mut valletta = 0usize;
        for _ in 0..5000 {
            let c = db.get(db.sample_weighted(&mut rng));
            match c.name {
                "Tokyo" => tokyo += 1,
                "Valletta" => valletta += 1,
                _ => {}
            }
        }
        assert!(tokyo > valletta, "tokyo={tokyo} valletta={valletta}");
    }

    #[test]
    fn hubs_are_a_strict_subset() {
        let db = CityDb::embedded();
        let hubs = db.hubs();
        assert!(!hubs.is_empty());
        assert!(hubs.len() < db.len());
        for id in hubs {
            assert!(db.get(id).is_hub);
        }
    }

    #[test]
    fn all_city_names_are_unique() {
        use std::collections::HashSet;
        let db = CityDb::embedded();
        let names: HashSet<_> = db.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), db.len());
    }
}
