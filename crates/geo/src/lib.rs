//! # shortcuts-geo
//!
//! Geographic primitives for the colo-shortcuts simulator.
//!
//! This crate provides everything the rest of the workspace needs to reason
//! about *where* things are on the planet and *how fast* light can get
//! between them:
//!
//! - [`GeoPoint`] — a validated latitude/longitude pair with great-circle
//!   (haversine) distance.
//! - [`light`] — speed-of-light-in-fiber propagation-delay math, used both
//!   by the RTT simulator and by the paper's §2.4 relay feasibility filter.
//! - [`cities`] — an embedded database of ~200 world cities (coordinates,
//!   country, continent, population weight, Internet-hub flag) that the
//!   topology generator places PoPs and colocation facilities at.
//! - [`country`] — ISO-3166-ish country codes and continent assignment.
//!
//! The crate has no IO and no clocks; `rand` is used only for
//! weighted-sampling helpers.
//!
//! ## Example
//!
//! ```
//! use shortcuts_geo::{GeoPoint, light};
//!
//! let london = GeoPoint::new(51.5074, -0.1278).unwrap();
//! let new_york = GeoPoint::new(40.7128, -74.0060).unwrap();
//! let km = london.distance_km(&new_york);
//! assert!((5550.0..5600.0).contains(&km));
//!
//! // One-way propagation delay over fiber at 2/3 c:
//! let ms = light::propagation_delay_ms(km);
//! assert!(ms > 25.0 && ms < 30.0);
//! ```

pub mod cities;
pub mod coord;
pub mod country;
pub mod light;

pub use cities::{City, CityDb, CityId};
pub use coord::GeoPoint;
pub use country::{Continent, CountryCode};
pub use light::{min_rtt_ms, propagation_delay_ms, FIBER_KM_PER_MS, SPEED_OF_LIGHT_KM_PER_MS};
