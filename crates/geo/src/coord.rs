//! Validated geographic coordinates and great-circle distance.

use std::fmt;

/// Mean Earth radius in kilometers (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A validated point on the Earth's surface.
///
/// Latitude is constrained to `[-90, +90]` degrees and longitude to
/// `[-180, +180]` degrees; construction through [`GeoPoint::new`] enforces
/// this, so any `GeoPoint` you hold is valid by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

/// Error returned when constructing a [`GeoPoint`] from out-of-range or
/// non-finite coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordError {
    /// Latitude outside `[-90, +90]` or not finite.
    InvalidLatitude,
    /// Longitude outside `[-180, +180]` or not finite.
    InvalidLongitude,
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::InvalidLatitude => write!(f, "latitude must be finite and in [-90, 90]"),
            CoordError::InvalidLongitude => {
                write!(f, "longitude must be finite and in [-180, 180]")
            }
        }
    }
}

impl std::error::Error for CoordError {}

impl GeoPoint {
    /// Creates a new point, validating ranges.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Result<Self, CoordError> {
        if !lat_deg.is_finite() || !(-90.0..=90.0).contains(&lat_deg) {
            return Err(CoordError::InvalidLatitude);
        }
        if !lon_deg.is_finite() || !(-180.0..=180.0).contains(&lon_deg) {
            return Err(CoordError::InvalidLongitude);
        }
        Ok(GeoPoint { lat_deg, lon_deg })
    }

    /// Latitude in degrees.
    pub fn lat(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees.
    pub fn lon(&self) -> f64 {
        self.lon_deg
    }

    /// Great-circle (haversine) distance to `other`, in kilometers.
    ///
    /// Haversine is numerically stable for both very small and antipodal
    /// separations, which matters because the simulator computes distances
    /// between PoPs inside the same city (a few km) as well as
    /// intercontinental spans.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();

        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().min(1.0).asin();
        EARTH_RADIUS_KM * c
    }

    /// Returns the initial bearing from `self` towards `other`, in degrees
    /// clockwise from north, normalized to `[0, 360)`.
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let b = y.atan2(x).to_degrees();
        (b + 360.0) % 360.0
    }

    /// Detour factor of routing through `via` compared to the direct
    /// great-circle distance. Always `>= 1.0` (up to floating error); `1.0`
    /// means `via` lies exactly on the great circle between the endpoints.
    ///
    /// Degenerate case: if the endpoints are co-located (direct distance
    /// ~0), the factor is defined as `1.0` when `via` is also co-located
    /// and `f64::INFINITY` otherwise.
    pub fn detour_factor(&self, other: &GeoPoint, via: &GeoPoint) -> f64 {
        let direct = self.distance_km(other);
        let through = self.distance_km(via) + via.distance_km(other);
        if direct < 1e-9 {
            return if through < 1e-9 { 1.0 } else { f64::INFINITY };
        }
        (through / direct).max(1.0)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat_deg, self.lon_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn rejects_out_of_range_latitude() {
        assert_eq!(GeoPoint::new(90.1, 0.0), Err(CoordError::InvalidLatitude));
        assert_eq!(GeoPoint::new(-90.1, 0.0), Err(CoordError::InvalidLatitude));
        assert_eq!(
            GeoPoint::new(f64::NAN, 0.0),
            Err(CoordError::InvalidLatitude)
        );
    }

    #[test]
    fn rejects_out_of_range_longitude() {
        assert_eq!(GeoPoint::new(0.0, 180.1), Err(CoordError::InvalidLongitude));
        assert_eq!(
            GeoPoint::new(0.0, -180.1),
            Err(CoordError::InvalidLongitude)
        );
        assert_eq!(
            GeoPoint::new(0.0, f64::INFINITY),
            Err(CoordError::InvalidLongitude)
        );
    }

    #[test]
    fn accepts_boundary_values() {
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
        assert!(GeoPoint::new(-90.0, -180.0).is_ok());
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = p(48.8566, 2.3522);
        assert!(a.distance_km(&a) < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = p(35.6762, 139.6503); // Tokyo
        let b = p(-33.8688, 151.2093); // Sydney
        let d1 = a.distance_km(&b);
        let d2 = b.distance_km(&a);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn known_distances_are_accurate() {
        // London -> New York, reference ~5570 km.
        let lon = p(51.5074, -0.1278);
        let nyc = p(40.7128, -74.0060);
        let d = lon.distance_km(&nyc);
        assert!((5540.0..5600.0).contains(&d), "got {d}");

        // Paris -> Frankfurt, reference ~479 km.
        let par = p(48.8566, 2.3522);
        let fra = p(50.1109, 8.6821);
        let d = par.distance_km(&fra);
        assert!((460.0..500.0).contains(&d), "got {d}");
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = p(0.0, 0.0);
        let b = p(0.0, 180.0);
        let d = a.distance_km(&b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, want {half}");
    }

    #[test]
    fn bearing_north_and_east() {
        let a = p(0.0, 0.0);
        assert!((a.bearing_deg(&p(10.0, 0.0)) - 0.0).abs() < 1e-6);
        assert!((a.bearing_deg(&p(0.0, 10.0)) - 90.0).abs() < 1e-6);
    }

    #[test]
    fn detour_factor_direct_is_one() {
        let a = p(0.0, 0.0);
        let b = p(0.0, 10.0);
        let mid = p(0.0, 5.0);
        let f = a.detour_factor(&b, &mid);
        assert!((f - 1.0).abs() < 1e-6, "got {f}");
    }

    #[test]
    fn detour_factor_large_for_far_via() {
        let a = p(51.5, -0.12); // London
        let b = p(48.85, 2.35); // Paris
        let via = p(35.68, 139.65); // Tokyo
        assert!(a.detour_factor(&b, &via) > 40.0);
    }

    #[test]
    fn detour_factor_degenerate_colocated_endpoints() {
        let a = p(10.0, 10.0);
        assert_eq!(a.detour_factor(&a, &a), 1.0);
        assert!(a.detour_factor(&a, &p(0.0, 0.0)).is_infinite());
    }
}
