//! Speed-of-light propagation-delay math.
//!
//! The paper's §2.4 feasibility filter and the RTT simulator both assume
//! signals travel through optical fiber at **2/3 of the speed of light in
//! vacuum** (the standard refractive-index-1.5 approximation, citing
//! Singla et al., "The Internet at the speed of light").

/// Speed of light in vacuum, km per millisecond.
pub const SPEED_OF_LIGHT_KM_PER_MS: f64 = 299.792458;

/// Effective signal speed in optical fiber (2/3 c), km per millisecond.
pub const FIBER_KM_PER_MS: f64 = SPEED_OF_LIGHT_KM_PER_MS * 2.0 / 3.0;

/// One-way propagation delay over `distance_km` of fiber, in milliseconds.
///
/// This is the physical lower bound on one-way latency; real paths add
/// router processing, queueing and circuitous fiber runs on top.
pub fn propagation_delay_ms(distance_km: f64) -> f64 {
    distance_km / FIBER_KM_PER_MS
}

/// Minimum possible round-trip time over `distance_km` of fiber, in
/// milliseconds (twice the one-way propagation delay).
pub fn min_rtt_ms(distance_km: f64) -> f64 {
    2.0 * propagation_delay_ms(distance_km)
}

/// Minimum possible RTT of a one-relay overlay path
/// `a --(d1 km)--> relay --(d2 km)--> b`, in milliseconds.
///
/// This is the left-hand side of the paper's feasibility inequality
/// (§2.4): `2 * [t(n1, f) + t(f, n2)] <= RTT(n1, n2)`.
pub fn min_relay_rtt_ms(d1_km: f64, d2_km: f64) -> f64 {
    2.0 * (propagation_delay_ms(d1_km) + propagation_delay_ms(d2_km))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiber_speed_is_two_thirds_c() {
        assert!((FIBER_KM_PER_MS - 199.861_638_666_666_67).abs() < 1e-9);
    }

    #[test]
    fn propagation_delay_zero_distance() {
        assert_eq!(propagation_delay_ms(0.0), 0.0);
    }

    #[test]
    fn transatlantic_min_rtt_is_realistic() {
        // London-NYC great circle ~5570 km => min RTT ~55.7 ms.
        let rtt = min_rtt_ms(5570.0);
        assert!((55.0..57.0).contains(&rtt), "got {rtt}");
    }

    #[test]
    fn min_rtt_is_double_one_way() {
        let d = 1234.5;
        assert!((min_rtt_ms(d) - 2.0 * propagation_delay_ms(d)).abs() < 1e-12);
    }

    #[test]
    fn relay_rtt_matches_sum_of_legs() {
        let got = min_relay_rtt_ms(1000.0, 2000.0);
        let want = min_rtt_ms(1000.0) + min_rtt_ms(2000.0);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn relay_rtt_monotone_in_distance() {
        assert!(min_relay_rtt_ms(100.0, 100.0) < min_relay_rtt_ms(100.0, 101.0));
        assert!(min_relay_rtt_ms(100.0, 100.0) < min_relay_rtt_ms(101.0, 100.0));
    }
}
