//! Country codes and continents.
//!
//! The paper's endpoint-selection methodology (§2.1) is *country-driven*:
//! one eyeball AS per country per round, endpoints always in different
//! countries, and the "Changing Countries and Paths" analysis (§3)
//! compares relays in the same vs. a different country than the
//! endpoints. A compact, copyable country-code type keeps all of that
//! cheap.

use std::fmt;

/// Two-letter country code (ISO-3166-alpha-2 style), stored inline.
///
/// Construction uppercases the input; only ASCII alphabetic pairs are
/// accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode([u8; 2]);

/// Error for invalid country code strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCountryCode;

impl fmt::Display for InvalidCountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "country code must be two ASCII letters")
    }
}

impl std::error::Error for InvalidCountryCode {}

impl CountryCode {
    /// Parses a two-ASCII-letter code, case-insensitive.
    pub fn new(code: &str) -> Result<Self, InvalidCountryCode> {
        let bytes = code.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            return Err(InvalidCountryCode);
        }
        Ok(CountryCode([
            bytes[0].to_ascii_uppercase(),
            bytes[1].to_ascii_uppercase(),
        ]))
    }

    /// Returns the code as a `&str`.
    pub fn as_str(&self) -> &str {
        // Safety: constructed only from ASCII alphabetic bytes.
        std::str::from_utf8(&self.0).expect("country code is always ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for CountryCode {
    type Err = InvalidCountryCode;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CountryCode::new(s)
    }
}

/// Continents, used for the intercontinental-pair statistics of §3
/// ("74% of RAE pairs are inter-continental").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    Africa,
    Asia,
    Europe,
    NorthAmerica,
    Oceania,
    SouthAmerica,
}

impl Continent {
    /// All continents, in a stable order.
    pub const ALL: [Continent; 6] = [
        Continent::Africa,
        Continent::Asia,
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::Oceania,
        Continent::SouthAmerica,
    ];

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Continent::Africa => "Africa",
            Continent::Asia => "Asia",
            Continent::Europe => "Europe",
            Continent::NorthAmerica => "North America",
            Continent::Oceania => "Oceania",
            Continent::SouthAmerica => "South America",
        }
    }
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_uppercases() {
        let cc = CountryCode::new("gb").unwrap();
        assert_eq!(cc.as_str(), "GB");
        assert_eq!(cc, CountryCode::new("GB").unwrap());
    }

    #[test]
    fn rejects_bad_codes() {
        assert!(CountryCode::new("G").is_err());
        assert!(CountryCode::new("GBR").is_err());
        assert!(CountryCode::new("G1").is_err());
        assert!(CountryCode::new("").is_err());
        assert!(CountryCode::new("日本").is_err());
    }

    #[test]
    fn from_str_roundtrip() {
        let cc: CountryCode = "de".parse().unwrap();
        assert_eq!(cc.to_string(), "DE");
    }

    #[test]
    fn continents_are_distinct_and_named() {
        let mut names: Vec<_> = Continent::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn country_codes_order_and_hash() {
        use std::collections::HashSet;
        let a = CountryCode::new("AA").unwrap();
        let b = CountryCode::new("AB").unwrap();
        assert!(a < b);
        let set: HashSet<_> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
