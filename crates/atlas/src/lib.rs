//! # shortcuts-atlas
//!
//! Simulated measurement platforms: RIPE Atlas, PlanetLab and Looking
//! Glasses (Periscope).
//!
//! The paper's methodology is defined almost entirely in terms of these
//! platforms' quirks — probe firmware versions and system tags,
//! 30-day connectivity stability, PlanetLab's notorious node flakiness,
//! Looking Glasses that only expose traceroute. This crate reproduces
//! those surfaces so the selection pipelines of §2.1–§2.3 can run
//! verbatim against them:
//!
//! - [`ripe`] — a probe/anchor population with firmware, tags,
//!   public/connected state and 30-day stability history, plus the
//!   credit-style measurement budget of the RIPE Atlas API.
//! - [`planetlab`] — research-hosted sites whose nodes come and go;
//!   consistent accessibility across checks is what the paper samples
//!   on.
//! - [`looking_glass`] — city-indexed Looking Glass vantage points and
//!   the Periscope-style "last-hop RTT via traceroute" facade used for
//!   RTT-based geolocation of colo IPs (§2.2).
//!
//! All populations are generated deterministically from a topology and
//! a seed, and register their vantage points as
//! [`shortcuts_netsim::Host`]s so the ping engine can reach them.

pub mod looking_glass;
pub mod planetlab;
pub mod ripe;

pub use looking_glass::{LookingGlass, LookingGlassNet, Periscope};
pub use planetlab::{PlanetLab, PlanetLabNode, PlanetLabSite};
pub use ripe::{MeasurementBudget, Probe, ProbeFilter, RipeAtlas, LATEST_FIRMWARE};
