//! Looking Glasses and the Periscope facade.
//!
//! The paper geolocates candidate colo IPs with Periscope (Giotsas et
//! al.): for each IP, query Looking Glasses *in the facility's city* and
//! keep the minimum last-hop traceroute RTT; the IP passes if that
//! minimum is ≤ 1 ms (i.e., the IP really is where the facility is).
//!
//! Looking Glasses are operated by transit and content networks and
//! exposed per-city, which the simulation mirrors: LGs are placed at
//! PoP cities of transit/content ASes, and Periscope only offers
//! traceroute — the last-hop RTT of which we model as a ping RTT from
//! the LG's host.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use shortcuts_geo::CityId;
use shortcuts_netsim::clock::SimTime;
use shortcuts_netsim::{HostId, HostKind, HostRegistry, Pinger};
use shortcuts_topology::{AsType, Asn, Topology};
use std::collections::HashMap;

/// One Looking Glass vantage point.
#[derive(Debug, Clone)]
pub struct LookingGlass {
    /// LG index.
    pub id: u32,
    /// Netsim host the LG probes from.
    pub host: HostId,
    /// Operating AS.
    pub asn: Asn,
    /// City of the vantage point.
    pub city: CityId,
}

/// The global Looking Glass population, indexed by city.
#[derive(Debug)]
pub struct LookingGlassNet {
    lgs: Vec<LookingGlass>,
    by_city: HashMap<CityId, Vec<u32>>,
}

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct LookingGlassConfig {
    /// Probability a transit AS exposes an LG at each of its PoPs.
    pub transit_lg_prob: f64,
    /// Probability a content AS exposes an LG at each of its PoPs.
    pub content_lg_prob: f64,
}

impl Default for LookingGlassConfig {
    fn default() -> Self {
        LookingGlassConfig {
            transit_lg_prob: 0.5,
            content_lg_prob: 0.25,
        }
    }
}

impl LookingGlassNet {
    /// Places LGs at transit/content PoP cities.
    pub fn generate(
        topo: &Topology,
        hosts: &mut HostRegistry,
        cfg: &LookingGlassConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lgs = Vec::new();
        let mut by_city: HashMap<CityId, Vec<u32>> = HashMap::new();
        for info in topo.ases() {
            let p = match info.as_type {
                AsType::Tier1 | AsType::Tier2 => cfg.transit_lg_prob,
                AsType::Content => cfg.content_lg_prob,
                _ => 0.0,
            };
            if p == 0.0 {
                continue;
            }
            let mut seen_cities = std::collections::HashSet::new();
            for &pop in &info.pops {
                let city = topo.pop(pop).city;
                if !seen_cities.insert(city) || !rng.gen_bool(p) {
                    continue;
                }
                let access_ms = rng.gen_range(0.05..0.4); // router-adjacent
                let Ok(host) = hosts.add_host_with_access(
                    topo,
                    info.asn,
                    Some(city),
                    HostKind::LookingGlass,
                    access_ms,
                ) else {
                    continue;
                };
                let id = lgs.len() as u32;
                by_city.entry(city).or_default().push(id);
                lgs.push(LookingGlass {
                    id,
                    host,
                    asn: info.asn,
                    city,
                });
            }
        }
        LookingGlassNet { lgs, by_city }
    }

    /// All LGs.
    pub fn lgs(&self) -> &[LookingGlass] {
        &self.lgs
    }

    /// LGs in a given city.
    pub fn in_city(&self, city: CityId) -> Vec<&LookingGlass> {
        self.by_city
            .get(&city)
            .map(|ids| ids.iter().map(|&i| &self.lgs[i as usize]).collect())
            .unwrap_or_default()
    }

    /// Number of distinct cities with at least one LG.
    pub fn city_count(&self) -> usize {
        self.by_city.len()
    }
}

/// Periscope-style measurement facade: traceroute-only access to LGs.
#[derive(Debug)]
pub struct Periscope<'n> {
    net: &'n LookingGlassNet,
    /// Number of traceroute attempts per LG (min is kept).
    pub attempts: usize,
}

impl<'n> Periscope<'n> {
    /// Wraps a Looking Glass population.
    pub fn new(net: &'n LookingGlassNet) -> Self {
        Periscope { net, attempts: 3 }
    }

    /// Minimum last-hop RTT (ms) from any LG in `city` to `target`,
    /// or `None` if the city has no LGs or all probes were lost.
    ///
    /// This is the §2.2 "RTT-based geolocation" primitive: the paper
    /// keeps the minimum across LGs to sidestep RTT inflation at
    /// individual vantage points.
    pub fn min_rtt_from_city<P: Pinger, R: Rng + ?Sized>(
        &self,
        engine: &P,
        city: CityId,
        target: HostId,
        t: SimTime,
        rng: &mut R,
    ) -> Option<f64> {
        let mut best: Option<f64> = None;
        for lg in self.net.in_city(city) {
            for k in 0..self.attempts {
                // Each attempt is a real traceroute; the metric is the
                // RTT yielded on the last hop to the target (§2.2).
                let rtt = engine
                    .traceroute(lg.host, target, t.plus_secs(k as f64), rng)
                    .and_then(|tr| tr.last_hop_rtt());
                if let Some(rtt) = rtt {
                    best = Some(best.map_or(rtt, |b: f64| b.min(rtt)));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_netsim::{LatencyModel, PingEngine};
    use shortcuts_topology::routing::Router;
    use shortcuts_topology::TopologyConfig;
    use std::sync::Arc;

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::generate(&TopologyConfig::small(), 99))
    }

    #[test]
    fn lgs_cover_many_cities() {
        let t = topo();
        let mut hosts = HostRegistry::new();
        let net = LookingGlassNet::generate(&t, &mut hosts, &LookingGlassConfig::default(), 3);
        assert!(!net.lgs().is_empty());
        assert!(net.city_count() > 10, "got {}", net.city_count());
        // by-city index is consistent.
        for lg in net.lgs() {
            assert!(net.in_city(lg.city).iter().any(|l| l.id == lg.id));
        }
    }

    #[test]
    fn lgs_only_at_transit_or_content() {
        let t = topo();
        let mut hosts = HostRegistry::new();
        let net = LookingGlassNet::generate(&t, &mut hosts, &LookingGlassConfig::default(), 3);
        for lg in net.lgs() {
            let ty = t.expect_as(lg.asn).as_type;
            assert!(
                matches!(ty, AsType::Tier1 | AsType::Tier2 | AsType::Content),
                "LG at {:?}",
                ty
            );
        }
    }

    #[test]
    fn same_city_target_has_tiny_min_rtt() {
        let t = topo();
        let router = Arc::new(Router::new(Arc::clone(&t)));
        let mut hosts = HostRegistry::new();
        let net = LookingGlassNet::generate(&t, &mut hosts, &LookingGlassConfig::default(), 3);
        // Pick a city with an LG and plant a target host there, in the
        // same AS as the LG (same-city, best case).
        let lg = &net.lgs()[0];
        let target = hosts
            .add_host(&t, lg.asn, Some(lg.city), HostKind::ColoInterface)
            .unwrap();
        let engine = PingEngine::new(t, router, Arc::new(hosts), LatencyModel::default());
        let peri = Periscope::new(&net);
        let mut rng = StdRng::seed_from_u64(8);
        let rtt = peri
            .min_rtt_from_city(&engine, lg.city, target, SimTime(0.0), &mut rng)
            .expect("LG in city");
        assert!(rtt < 5.0, "same-city min RTT should be small, got {rtt}");
    }

    #[test]
    fn city_without_lgs_returns_none() {
        let t = topo();
        let router = Arc::new(Router::new(Arc::clone(&t)));
        let mut hosts = HostRegistry::new();
        let net = LookingGlassNet::generate(&t, &mut hosts, &LookingGlassConfig::default(), 3);
        let lg_cities: std::collections::HashSet<_> = net.lgs().iter().map(|l| l.city).collect();
        let empty_city = t
            .cities
            .iter()
            .map(|c| c.id)
            .find(|c| !lg_cities.contains(c))
            .expect("some city without LGs");
        let target = net.lgs()[0].host;
        let engine = PingEngine::new(t, router, Arc::new(hosts), LatencyModel::default());
        let peri = Periscope::new(&net);
        let mut rng = StdRng::seed_from_u64(8);
        assert!(peri
            .min_rtt_from_city(&engine, empty_city, target, SimTime(0.0), &mut rng)
            .is_none());
    }
}
