//! PlanetLab simulation.
//!
//! PlanetLab nodes live at research/academic institutions and are
//! famously flaky: the paper could only sample ~59 relays out of 500
//! allocated nodes because nodes must be "consistently accessible and
//! pingable before each measurement round" (§2.3.1, footnote 3). The
//! simulation gives every node a reliability level and answers
//! round-by-round availability queries, so the selection logic has the
//! same failure surface as the real platform.

use rand::prelude::*;
use rand::rngs::StdRng;
use shortcuts_geo::CityId;
use shortcuts_netsim::{HostId, HostKind, HostRegistry};
use shortcuts_topology::{AsType, Asn, Topology};

/// A PlanetLab site: one research institution hosting a few nodes.
#[derive(Debug, Clone)]
pub struct PlanetLabSite {
    /// Site index.
    pub id: u32,
    /// Hosting research AS.
    pub asn: Asn,
    /// Site city.
    pub city: CityId,
    /// Node indexes (into [`PlanetLab::nodes`]).
    pub nodes: Vec<u32>,
}

/// A PlanetLab node.
#[derive(Debug, Clone)]
pub struct PlanetLabNode {
    /// Node index.
    pub id: u32,
    /// Owning site.
    pub site: u32,
    /// Netsim host for the node's address.
    pub host: HostId,
    /// Hosting AS (same as the site's).
    pub asn: Asn,
    /// City (same as the site's).
    pub city: CityId,
    /// Probability the node is up in any given round.
    pub reliability: f64,
}

/// The simulated PlanetLab deployment.
#[derive(Debug)]
pub struct PlanetLab {
    sites: Vec<PlanetLabSite>,
    nodes: Vec<PlanetLabNode>,
    seed: u64,
}

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct PlanetLabConfig {
    /// Min/max nodes per site.
    pub nodes_per_site: (usize, usize),
    /// Reliability range nodes are drawn from (uniform).
    pub reliability: (f64, f64),
}

impl Default for PlanetLabConfig {
    fn default() -> Self {
        PlanetLabConfig {
            nodes_per_site: (2, 4),
            reliability: (0.3, 0.95),
        }
    }
}

impl PlanetLab {
    /// Generates one site per research AS in the topology.
    pub fn generate(
        topo: &Topology,
        hosts: &mut HostRegistry,
        cfg: &PlanetLabConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sites = Vec::new();
        let mut nodes = Vec::new();
        for &asn in topo.asns_of_type(AsType::Research) {
            let info = topo.expect_as(asn);
            let Some(&pop) = info.pops.first() else {
                continue;
            };
            let city = topo.pop(pop).city;
            let site_id = sites.len() as u32;
            let n = rng.gen_range(cfg.nodes_per_site.0..=cfg.nodes_per_site.1);
            let mut site_nodes = Vec::with_capacity(n);
            for _ in 0..n {
                let access_ms = rng.gen_range(0.2..1.2); // campus server room
                let Ok(host) =
                    hosts.add_host_with_access(topo, asn, Some(city), HostKind::Server, access_ms)
                else {
                    continue;
                };
                let id = nodes.len() as u32;
                nodes.push(PlanetLabNode {
                    id,
                    site: site_id,
                    host,
                    asn,
                    city,
                    reliability: rng.gen_range(cfg.reliability.0..cfg.reliability.1),
                });
                site_nodes.push(id);
            }
            sites.push(PlanetLabSite {
                id: site_id,
                asn,
                city,
                nodes: site_nodes,
            });
        }
        PlanetLab { sites, nodes, seed }
    }

    /// All sites.
    pub fn sites(&self) -> &[PlanetLabSite] {
        &self.sites
    }

    /// All nodes.
    pub fn nodes(&self) -> &[PlanetLabNode] {
        &self.nodes
    }

    /// Whether a node is accessible in `round` (deterministic per
    /// (deployment seed, node, round)).
    pub fn is_up(&self, node: u32, round: u32) -> bool {
        let n = &self.nodes[node as usize];
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(node) << 32 | u64::from(round)),
        );
        rng.gen_bool(n.reliability)
    }

    /// Nodes accessible in **both** `round` and the preceding check
    /// (the paper requires nodes "consistently accessible ... before
    /// each measurement round").
    pub fn consistently_up(&self, round: u32) -> Vec<&PlanetLabNode> {
        self.nodes
            .iter()
            .filter(|n| self.is_up(n.id, round) && (round == 0 || self.is_up(n.id, round - 1)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_topology::TopologyConfig;

    fn deployment() -> (Topology, PlanetLab) {
        let topo = Topology::generate(&TopologyConfig::small(), 55);
        let mut hosts = HostRegistry::new();
        let pl = PlanetLab::generate(&topo, &mut hosts, &PlanetLabConfig::default(), 2);
        (topo, pl)
    }

    #[test]
    fn one_site_per_research_as() {
        let (topo, pl) = deployment();
        assert_eq!(pl.sites().len(), topo.asns_of_type(AsType::Research).len());
        for s in pl.sites() {
            assert!(!s.nodes.is_empty());
            assert_eq!(topo.expect_as(s.asn).as_type, AsType::Research);
        }
    }

    #[test]
    fn availability_is_deterministic() {
        let (_, pl) = deployment();
        for node in 0..pl.nodes().len() as u32 {
            for round in 0..5 {
                assert_eq!(pl.is_up(node, round), pl.is_up(node, round));
            }
        }
    }

    #[test]
    fn flakiness_reduces_usable_nodes() {
        let (_, pl) = deployment();
        let total = pl.nodes().len();
        let mut usable_counts = Vec::new();
        for round in 1..10 {
            usable_counts.push(pl.consistently_up(round).len());
        }
        let avg = usable_counts.iter().sum::<usize>() as f64 / usable_counts.len() as f64;
        assert!(avg < total as f64, "some nodes must be down");
        assert!(avg > 0.0, "not all nodes down");
    }

    #[test]
    fn consistently_up_requires_two_rounds() {
        let (_, pl) = deployment();
        for round in 1..5 {
            for n in pl.consistently_up(round) {
                assert!(pl.is_up(n.id, round));
                assert!(pl.is_up(n.id, round - 1));
            }
        }
    }

    #[test]
    fn reliability_within_config_range() {
        let (_, pl) = deployment();
        for n in pl.nodes() {
            assert!((0.3..0.95).contains(&n.reliability));
        }
    }
}
