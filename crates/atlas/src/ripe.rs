//! RIPE Atlas platform simulation.
//!
//! Generates a globally distributed probe population with the metadata
//! the paper's endpoint filter (§2.1) keys on:
//!
//! 1. firmware version (only the latest avoids measurement interference,
//!    citing Holterbach et al.),
//! 2. public availability,
//! 3. connected / pingable state,
//! 4. geolocation tags,
//! 5. 30-day connectivity stability.
//!
//! Probe density is deliberately **biased toward large eyeballs** (as on
//! the real platform), which is exactly why the paper samples one probe
//! per AS per round instead of using all probes. Anchors are placed at
//! well-connected ASes. A credit-based [`MeasurementBudget`] mirrors the
//! RIPE Atlas user-defined-measurement constraints the workflow must
//! operate under.

use rand::prelude::*;
use rand::rngs::StdRng;
use shortcuts_geo::{CityId, CountryCode};
use shortcuts_netsim::{HostId, HostKind, HostRegistry};
use shortcuts_topology::{AsType, Asn, Topology};

/// The "current" firmware version; probes on older firmware are filtered
/// out by the paper's criterion (i).
pub const LATEST_FIRMWARE: u32 = 4790;

/// One RIPE Atlas probe (or anchor).
#[derive(Debug, Clone)]
pub struct Probe {
    /// Platform probe id.
    pub id: u32,
    /// Netsim host carrying the probe's address.
    pub host: HostId,
    /// AS hosting the probe.
    pub asn: Asn,
    /// Country of the hosting AS (the probe's physical country).
    pub country: CountryCode,
    /// City the probe is in.
    pub city: CityId,
    /// Firmware version.
    pub firmware: u32,
    /// Whether the probe is publicly usable.
    pub public: bool,
    /// Whether the probe is currently connected (and hence pingable).
    pub connected: bool,
    /// Whether the probe carries geolocation coordinates/tags.
    pub has_geo: bool,
    /// Days of uninterrupted connectivity out of the last 30.
    pub stable_days: u32,
    /// Whether this is an anchor (server-class, well-connected).
    pub is_anchor: bool,
}

/// Declarative probe filter — the paper's §2.1 criteria as data.
#[derive(Debug, Clone)]
pub struct ProbeFilter {
    /// Minimum firmware version (criterion i).
    pub min_firmware: u32,
    /// Require public probes (criterion ii).
    pub require_public: bool,
    /// Require connected/pingable probes (criterion iii).
    pub require_connected: bool,
    /// Require geolocation tags (criterion iv).
    pub require_geo: bool,
    /// Minimum days of stability over the last 30 (criterion v).
    pub min_stable_days: u32,
}

impl ProbeFilter {
    /// The exact filter of §2.1: latest firmware, public, connected,
    /// geo-tagged, stable for the whole 30-day window.
    pub fn paper() -> Self {
        ProbeFilter {
            min_firmware: LATEST_FIRMWARE,
            require_public: true,
            require_connected: true,
            require_geo: true,
            min_stable_days: 30,
        }
    }

    /// Whether `p` passes the filter.
    pub fn accepts(&self, p: &Probe) -> bool {
        p.firmware >= self.min_firmware
            && (!self.require_public || p.public)
            && (!self.require_connected || p.connected)
            && (!self.require_geo || p.has_geo)
            && p.stable_days >= self.min_stable_days
    }
}

/// Generation knobs for the probe population.
#[derive(Debug, Clone)]
pub struct RipeAtlasConfig {
    /// Expected probes at a large eyeball (scaled by user share).
    pub probes_per_big_eyeball: usize,
    /// Probability a core (content/tier-2/research) AS hosts probes.
    /// RIPE Atlas has a significant deployment in commercial core
    /// networks — the paper's explanation for RAR_other's strength.
    pub core_as_probe_prob: f64,
    /// Probability an enterprise stub AS hosts probes.
    pub enterprise_probe_prob: f64,
    /// Probability that a *small* eyeball (below ~10 % user share)
    /// hosts any probe at all — RIPE Atlas coverage at small access
    /// ISPs is sparse.
    pub small_eyeball_probe_prob: f64,
    /// Max probes at a non-eyeball AS.
    pub other_as_max_probes: usize,
    /// Fraction of probes that are anchors.
    pub anchor_fraction: f64,
    /// Probability a probe runs the latest firmware.
    pub latest_firmware_prob: f64,
    /// Probability a probe is public.
    pub public_prob: f64,
    /// Probability a probe is currently connected.
    pub connected_prob: f64,
    /// Probability a probe has geolocation tags.
    pub geo_prob: f64,
}

impl Default for RipeAtlasConfig {
    fn default() -> Self {
        RipeAtlasConfig {
            probes_per_big_eyeball: 14,
            core_as_probe_prob: 0.7,
            enterprise_probe_prob: 0.12,
            small_eyeball_probe_prob: 0.3,
            other_as_max_probes: 3,
            anchor_fraction: 0.05,
            latest_firmware_prob: 0.8,
            public_prob: 0.92,
            connected_prob: 0.9,
            geo_prob: 0.85,
        }
    }
}

/// The simulated RIPE Atlas platform.
#[derive(Debug)]
pub struct RipeAtlas {
    probes: Vec<Probe>,
}

impl RipeAtlas {
    /// Generates the probe population over `topo`, registering one host
    /// per probe in `hosts`.
    pub fn generate(
        topo: &Topology,
        hosts: &mut HostRegistry,
        cfg: &RipeAtlasConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut probes = Vec::new();
        let mut next_id = 10_000u32;

        let mut add_probe = |rng: &mut StdRng,
                             probes: &mut Vec<Probe>,
                             hosts: &mut HostRegistry,
                             asn: Asn,
                             city: CityId| {
            // Last-mile access delay: probes at eyeballs sit on home
            // DSL/cable/fiber lines; probes at other networks are
            // usually racked near the network core.
            let access_ms = match topo.expect_as(asn).as_type {
                AsType::Eyeball => rng.gen_range(4.0..22.0),
                AsType::Enterprise => rng.gen_range(2.0..10.0),
                _ => rng.gen_range(0.2..1.5),
            };
            let Ok(host) =
                hosts.add_host_with_access(topo, asn, Some(city), HostKind::Probe, access_ms)
            else {
                return;
            };
            let is_anchor = rng.gen_bool(cfg.anchor_fraction);
            let firmware = if rng.gen_bool(cfg.latest_firmware_prob) {
                LATEST_FIRMWARE
            } else {
                LATEST_FIRMWARE - rng.gen_range(1..=400)
            };
            let connected = rng.gen_bool(cfg.connected_prob);
            // Stability correlates with connectedness: a disconnected
            // probe can't have a full stable window.
            let stable_days = if connected {
                if rng.gen_bool(0.75) {
                    30
                } else {
                    rng.gen_range(0..30)
                }
            } else {
                rng.gen_range(0..25)
            };
            probes.push(Probe {
                id: next_id,
                host,
                asn,
                country: topo.cities.get(city).country,
                city,
                firmware,
                public: rng.gen_bool(cfg.public_prob),
                connected,
                has_geo: rng.gen_bool(cfg.geo_prob),
                stable_days,
                is_anchor,
            });
            next_id += 1;
        };

        for info in topo.ases() {
            let domestic_cities: Vec<CityId> = info
                .pops
                .iter()
                .map(|&p| topo.pop(p).city)
                .filter(|&c| topo.cities.get(c).country == info.home_country)
                .collect();
            if domestic_cities.is_empty() {
                continue;
            }
            match info.as_type {
                AsType::Eyeball => {
                    // Probe count scales with user share; small eyeballs
                    // often host none at all.
                    let n = if info.user_share >= 0.10 {
                        1 + (info.user_share * cfg.probes_per_big_eyeball as f64 * 2.0).round()
                            as usize
                    } else if rng.gen_bool(cfg.small_eyeball_probe_prob) {
                        1
                    } else {
                        0
                    };
                    for _ in 0..n {
                        let city = *domestic_cities.choose(&mut rng).expect("non-empty");
                        add_probe(&mut rng, &mut probes, hosts, info.asn, city);
                    }
                }
                AsType::Content | AsType::Tier2 | AsType::Research | AsType::Enterprise => {
                    let p = if info.as_type == AsType::Enterprise {
                        cfg.enterprise_probe_prob
                    } else {
                        cfg.core_as_probe_prob
                    };
                    if rng.gen_bool(p) {
                        let n = rng.gen_range(1..=cfg.other_as_max_probes);
                        // Core-network probes are usually racked in the
                        // AS's best-connected metro.
                        let hub_city = domestic_cities
                            .iter()
                            .copied()
                            .find(|&c| topo.cities.get(c).is_hub);
                        for _ in 0..n {
                            let city = match hub_city {
                                Some(h) if rng.gen_bool(0.7) => h,
                                _ => *domestic_cities.choose(&mut rng).expect("non-empty"),
                            };
                            add_probe(&mut rng, &mut probes, hosts, info.asn, city);
                        }
                    }
                }
                AsType::Tier1 => {} // no probes inside backbones
            }
        }

        RipeAtlas { probes }
    }

    /// All probes.
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }

    /// Probes passing `filter`.
    pub fn filtered(&self, filter: &ProbeFilter) -> Vec<&Probe> {
        self.probes.iter().filter(|p| filter.accepts(p)).collect()
    }

    /// Probes of a given AS.
    pub fn probes_in_as(&self, asn: Asn) -> Vec<&Probe> {
        self.probes.iter().filter(|p| p.asn == asn).collect()
    }
}

/// Credit-based measurement budget, mirroring RIPE Atlas UDM limits.
///
/// Every ping costs credits; the workflow checks affordability before
/// scheduling. The paper's campaign sent ~8.7 M pings — the budget type
/// makes that constraint explicit and testable.
#[derive(Debug, Clone)]
pub struct MeasurementBudget {
    credits: u64,
    spent: u64,
    /// Credits per single ping measurement.
    pub ping_cost: u64,
}

impl MeasurementBudget {
    /// Creates a budget with the given credits (1 credit = 1 ping by
    /// default).
    pub fn new(credits: u64) -> Self {
        MeasurementBudget {
            credits,
            spent: 0,
            ping_cost: 1,
        }
    }

    /// Whether `n` pings are affordable.
    pub fn can_afford(&self, n: u64) -> bool {
        self.spent + n * self.ping_cost <= self.credits
    }

    /// Spends credits for `n` pings. Returns `false` (spending nothing)
    /// if unaffordable.
    pub fn spend(&mut self, n: u64) -> bool {
        if !self.can_afford(n) {
            return false;
        }
        self.spent += n * self.ping_cost;
        true
    }

    /// Credits remaining.
    pub fn remaining(&self) -> u64 {
        self.credits - self.spent
    }

    /// Total pings spent so far.
    pub fn spent_pings(&self) -> u64 {
        self.spent / self.ping_cost.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_topology::TopologyConfig;

    fn platform() -> (Topology, RipeAtlas, HostRegistry) {
        let topo = Topology::generate(&TopologyConfig::small(), 33);
        let mut hosts = HostRegistry::new();
        let ra = RipeAtlas::generate(&topo, &mut hosts, &RipeAtlasConfig::default(), 1);
        (topo, ra, hosts)
    }

    #[test]
    fn population_is_nonempty_and_diverse() {
        let (topo, ra, hosts) = platform();
        assert!(ra.probes().len() > 100, "got {}", ra.probes().len());
        assert_eq!(hosts.len(), ra.probes().len());
        // Probes exist in many countries.
        let countries: std::collections::HashSet<_> =
            ra.probes().iter().map(|p| p.country).collect();
        assert!(countries.len() > 30, "got {}", countries.len());
        // Every *large* eyeball AS hosts at least one probe.
        for &asn in topo.eyeball_asns() {
            if topo.expect_as(asn).user_share >= 0.10 {
                assert!(!ra.probes_in_as(asn).is_empty(), "{asn} without probes");
            }
        }
    }

    #[test]
    fn paper_filter_reduces_population() {
        let (_, ra, _) = platform();
        let all = ra.probes().len();
        let kept = ra.filtered(&ProbeFilter::paper()).len();
        assert!(kept > 0);
        assert!(kept < all, "filter must drop something: {kept}/{all}");
        // Every kept probe satisfies all criteria.
        for p in ra.filtered(&ProbeFilter::paper()) {
            assert_eq!(p.firmware, LATEST_FIRMWARE);
            assert!(p.public && p.connected && p.has_geo);
            assert_eq!(p.stable_days, 30);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let topo = Topology::generate(&TopologyConfig::small(), 33);
        let mut h1 = HostRegistry::new();
        let mut h2 = HostRegistry::new();
        let a = RipeAtlas::generate(&topo, &mut h1, &RipeAtlasConfig::default(), 9);
        let b = RipeAtlas::generate(&topo, &mut h2, &RipeAtlasConfig::default(), 9);
        assert_eq!(a.probes().len(), b.probes().len());
        for (x, y) in a.probes().iter().zip(b.probes().iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.firmware, y.firmware);
            assert_eq!(x.stable_days, y.stable_days);
        }
    }

    #[test]
    fn probes_are_in_home_country() {
        let (topo, ra, _) = platform();
        for p in ra.probes() {
            let info = topo.expect_as(p.asn);
            assert_eq!(p.country, info.home_country);
            assert_eq!(topo.cities.get(p.city).country, info.home_country);
        }
    }

    #[test]
    fn filter_criteria_are_independent() {
        let (_, ra, _) = platform();
        let base = ProbeFilter {
            min_firmware: 0,
            require_public: false,
            require_connected: false,
            require_geo: false,
            min_stable_days: 0,
        };
        let all = ra.filtered(&base).len();
        assert_eq!(all, ra.probes().len());
        let fw_only = ra.filtered(&ProbeFilter {
            min_firmware: LATEST_FIRMWARE,
            ..base.clone()
        });
        assert!(fw_only.len() < all);
        assert!(fw_only.iter().all(|p| p.firmware >= LATEST_FIRMWARE));
    }

    #[test]
    fn budget_accounting() {
        let mut b = MeasurementBudget::new(10);
        assert!(b.can_afford(10));
        assert!(b.spend(6));
        assert_eq!(b.remaining(), 4);
        assert!(!b.spend(5), "cannot overspend");
        assert_eq!(b.remaining(), 4, "failed spend must not deduct");
        assert!(b.spend(4));
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.spent_pings(), 10);
    }

    #[test]
    fn anchors_are_a_minority() {
        let (_, ra, _) = platform();
        let anchors = ra.probes().iter().filter(|p| p.is_anchor).count();
        assert!(anchors > 0);
        assert!(anchors * 5 < ra.probes().len());
    }
}
