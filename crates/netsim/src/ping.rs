//! The ping engine: end-to-end RTT sampling between registered hosts.
//!
//! Composes the stack: resolve hosts → policy AS path (cached per
//! destination by [`Router`]) → router-level expansion → base RTT →
//! noise/faults → one observed sample. The deterministic part
//! (path + base RTT) is cached per host pair because the campaign pings
//! the same pairs six times per window, 45 rounds in a row.

use crate::clock::SimTime;
use crate::fault::FaultPlan;
use crate::host::{HostId, HostRegistry};
use crate::latency::LatencyModel;
use crate::path::expand_path;
use parking_lot::RwLock;
use rand::Rng;
use shortcuts_topology::routing::Router;
use shortcuts_topology::{Asn, Topology};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cached deterministic path facts for a host pair.
#[derive(Debug, Clone)]
struct PairInfo {
    /// Base RTT (deterministic part), ms.
    base_ms: f64,
    /// AS-level path (for fault checks and diagnostics). Read-only
    /// after construction, so it is shared — handing it out is a
    /// refcount bump, never a per-ping deep clone.
    as_path: Arc<[Asn]>,
    /// Midpoint longitude for the diurnal term.
    mid_lon: f64,
}

/// Statistics the engine keeps about itself (diagnostics/benchmarks).
#[derive(Debug, Clone, Copy, Default)]
pub struct PingStats {
    /// Pings attempted.
    pub attempts: u64,
    /// Pings that returned a reply.
    pub replies: u64,
    /// Pings lost to noise or faults.
    pub losses: u64,
    /// Pings that failed because no route exists.
    pub unroutable: u64,
}

/// Lock-free counters behind [`PingStats`]: the campaign's parallel
/// executor hammers these from every worker thread, so they are plain
/// relaxed atomics rather than a lock.
#[derive(Debug, Default)]
struct StatCounters {
    attempts: AtomicU64,
    replies: AtomicU64,
    losses: AtomicU64,
    unroutable: AtomicU64,
}

/// Shards in the pair cache. First-touch rounds are write-heavy — the
/// campaign's sharded scheduler can have several rounds' worth of
/// worker threads inserting fresh pairs at once — so the cache is
/// split into independently locked shards to keep writers from
/// serializing on one `RwLock`. 64 shards ≫ any realistic core count.
const CACHE_SHARDS: usize = 64;

/// One independently locked portion of the pair cache.
type CacheShard = RwLock<HashMap<(HostId, HostId), Option<Arc<PairInfo>>>>;

/// Pair cache: `Arc` per entry so a hit is a refcount bump, not a
/// deep clone of the AS path under the read lock; one lock per shard
/// so concurrent first-touch inserts rarely contend.
struct PairCache {
    shards: Vec<CacheShard>,
}

impl PairCache {
    fn new() -> Self {
        PairCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    /// The shard owning a pair: a SplitMix64 finalizer over both host
    /// ids, so pairs sharing a source still spread across shards.
    fn shard(&self, key: (HostId, HostId)) -> &CacheShard {
        let mut z = (u64::from(key.0 .0) << 32) | u64::from(key.1 .0);
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        &self.shards[(z as usize) % CACHE_SHARDS]
    }

    fn get(&self, key: (HostId, HostId)) -> Option<Option<Arc<PairInfo>>> {
        self.shard(key).read().get(&key).cloned()
    }

    fn insert(&self, key: (HostId, HostId), info: Option<Arc<PairInfo>>) {
        self.shard(key).write().insert(key, info);
    }
}

/// The ping engine. `Sync`: all interior mutability is a read-mostly
/// sharded pair cache behind per-shard `RwLock`s plus atomic counters,
/// so one engine is shared by every measurement worker thread.
pub struct PingEngine<'t> {
    topo: &'t Topology,
    router: &'t Router<'t>,
    hosts: &'t HostRegistry,
    model: LatencyModel,
    faults: FaultPlan,
    cache: PairCache,
    stats: StatCounters,
}

impl<'t> PingEngine<'t> {
    /// Creates an engine over a topology, router, host registry and
    /// latency model, with no faults scheduled.
    pub fn new(
        topo: &'t Topology,
        router: &'t Router<'t>,
        hosts: &'t HostRegistry,
        model: LatencyModel,
    ) -> Self {
        PingEngine {
            topo,
            router,
            hosts,
            model,
            faults: FaultPlan::none(),
            cache: PairCache::new(),
            stats: StatCounters::default(),
        }
    }

    /// Installs a fault plan (replaces any previous plan).
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The topology the engine routes over.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The host registry.
    pub fn hosts(&self) -> &HostRegistry {
        self.hosts
    }

    /// The latency model in use.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// Engine statistics so far (a consistent-enough snapshot: each
    /// counter is exact; totals are exact whenever no ping is mid-
    /// flight on another thread).
    pub fn stats(&self) -> PingStats {
        PingStats {
            attempts: self.stats.attempts.load(Ordering::Relaxed),
            replies: self.stats.replies.load(Ordering::Relaxed),
            losses: self.stats.losses.load(Ordering::Relaxed),
            unroutable: self.stats.unroutable.load(Ordering::Relaxed),
        }
    }

    /// Deterministic path facts for a pair, computed once.
    fn pair_info(&self, src: HostId, dst: HostId) -> Option<Arc<PairInfo>> {
        if let Some(cached) = self.cache.get((src, dst)) {
            return cached;
        }
        let s = self.hosts.get(src);
        let d = self.hosts.get(dst);
        let access = s.access_ms + d.access_ms;
        let info = if s.asn == d.asn {
            let path = expand_path(
                self.topo,
                &[s.asn],
                s.location,
                d.location,
                &self.model.expand,
            );
            Some(Arc::new(PairInfo {
                base_ms: self.model.base_rtt_ms(&path) + access,
                as_path: Arc::from([s.asn].as_slice()),
                mid_lon: mid_longitude(s.location.lon(), d.location.lon()),
            }))
        } else {
            // An echo round trip traverses the forward route AND the
            // (possibly different) return route; base RTT sums both
            // one-way expansions, which also makes RTT(a,b) == RTT(b,a)
            // exactly — matching the paper's symmetry observation.
            let fwd_as = self.router.as_path(s.asn, d.asn);
            let rev_as = self.router.as_path(d.asn, s.asn);
            match (fwd_as, rev_as) {
                (Some(fwd_as), Some(rev_as)) => {
                    let fwd = expand_path(
                        self.topo,
                        &fwd_as,
                        s.location,
                        d.location,
                        &self.model.expand,
                    );
                    let rev = expand_path(
                        self.topo,
                        &rev_as,
                        d.location,
                        s.location,
                        &self.model.expand,
                    );
                    Some(Arc::new(PairInfo {
                        base_ms: self.model.base_rtt_two_way(&fwd, &rev) + access,
                        as_path: fwd_as.into(),
                        mid_lon: mid_longitude(s.location.lon(), d.location.lon()),
                    }))
                }
                _ => None,
            }
        };
        self.cache.insert((src, dst), info.clone());
        info
    }

    /// The deterministic base RTT between two hosts, ms (`None` if
    /// unroutable). Useful for tests and calibration; real measurements
    /// go through [`PingEngine::ping`].
    pub fn base_rtt(&self, src: HostId, dst: HostId) -> Option<f64> {
        self.pair_info(src, dst).map(|p| p.base_ms)
    }

    /// AS path between two hosts (`None` if unroutable). Shared, not
    /// cloned: the campaign's fault checks read this on every ping.
    pub fn as_path(&self, src: HostId, dst: HostId) -> Option<Arc<[Asn]>> {
        self.pair_info(src, dst).map(|p| Arc::clone(&p.as_path))
    }

    /// Sends one ping at time `t`; returns the observed RTT in ms, or
    /// `None` on loss / outage / no route.
    pub fn ping<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        rng: &mut R,
    ) -> Option<f64> {
        self.stats.attempts.fetch_add(1, Ordering::Relaxed);
        let Some(info) = self.pair_info(src, dst) else {
            self.stats.unroutable.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if self.faults.path_down(&info.as_path, t) {
            self.stats.losses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let extra = self.faults.path_extra_loss(&info.as_path);
        if extra > 0.0 && rng.gen_bool(extra.min(1.0)) {
            self.stats.losses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match self.model.sample_rtt(info.base_ms, t, info.mid_lon, rng) {
            Some(rtt) => {
                self.stats.replies.fetch_add(1, Ordering::Relaxed);
                Some(rtt)
            }
            None => {
                self.stats.losses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Sends `n` pings spaced `interval_secs` apart starting at `t` and
    /// returns the replies (lost pings omitted). This is the paper's
    /// "6 pings, 5 minutes apart, per 30-minute window" primitive.
    pub fn ping_series<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        n: usize,
        interval_secs: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        (0..n)
            .filter_map(|i| self.ping(src, dst, t.plus_secs(i as f64 * interval_secs), rng))
            .collect()
    }
}

/// Longitude midpoint that respects the antimeridian (picks the midpoint
/// on the shorter arc).
fn mid_longitude(a: f64, b: f64) -> f64 {
    let diff = (b - a + 540.0).rem_euclid(360.0) - 180.0;
    let mid = a + diff / 2.0;
    (mid + 540.0).rem_euclid(360.0) - 180.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shortcuts_topology::TopologyConfig;

    struct Fixture {
        topo: &'static Topology,
        router: &'static Router<'static>,
    }

    /// Builds a leaked topology+router (tests only; avoids self-ref
    /// structs). The topology is small, so the leak is negligible.
    fn fixture() -> Fixture {
        let topo: &'static Topology =
            Box::leak(Box::new(Topology::generate(&TopologyConfig::small(), 77)));
        let router: &'static Router<'static> = Box::leak(Box::new(Router::new(topo)));
        Fixture { topo, router }
    }

    fn two_hosts(f: &Fixture) -> (PingEngine<'static>, HostId, HostId) {
        let mut reg = HostRegistry::new();
        let eyes = f.topo.eyeball_asns();
        let a = reg.add_host_in_as(f.topo, eyes[0], None).unwrap();
        let b = reg
            .add_host_in_as(f.topo, eyes[eyes.len() / 2], None)
            .unwrap();
        let reg: &'static HostRegistry = Box::leak(Box::new(reg));
        let engine = PingEngine::new(f.topo, f.router, reg, LatencyModel::default());
        (engine, a, b)
    }

    #[test]
    fn engine_is_sync_and_shareable() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<PingEngine<'static>>();

        // Concurrent pings through one shared engine must keep the
        // counters consistent.
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        std::thread::scope(|s| {
            for t in 0..4 {
                let engine = &engine;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + t);
                    for i in 0..50 {
                        let _ = engine.ping(a, b, SimTime(f64::from(i)), &mut rng);
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.attempts, 200);
        assert_eq!(stats.replies + stats.losses + stats.unroutable, 200);
    }

    #[test]
    fn pair_cache_shards_are_stable_and_spread() {
        let cache = PairCache::new();
        for i in 0..500u32 {
            let key = (HostId(i), HostId(i ^ 0xABC));
            cache.insert(key, None);
            assert!(cache.get(key).is_some(), "inserted pair must be found");
        }
        // The shard hash must actually spread pairs; a constant hash
        // would silently restore single-lock contention.
        let used = cache.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(used > CACHE_SHARDS / 2, "only {used} shards used");
    }

    #[test]
    fn ping_between_eyeballs_returns_plausible_rtt() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let mut rng = StdRng::seed_from_u64(1);
        let mut got = 0;
        for i in 0..20 {
            if let Some(rtt) = engine.ping(a, b, SimTime(i as f64 * 60.0), &mut rng) {
                assert!(rtt > 0.0 && rtt < 2000.0, "rtt {rtt}");
                got += 1;
            }
        }
        assert!(got >= 15, "most pings should succeed, got {got}");
        let stats = engine.stats();
        assert_eq!(stats.attempts, 20);
        assert_eq!(stats.replies + stats.losses + stats.unroutable, 20);
    }

    #[test]
    fn base_rtt_at_least_speed_of_light() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let (ha, hb) = (engine.hosts().get(a).clone(), engine.hosts().get(b).clone());
        let min_rtt = shortcuts_geo::min_rtt_ms(ha.location.distance_km(&hb.location));
        let base = engine.base_rtt(a, b).expect("routable");
        assert!(
            base >= min_rtt,
            "base {base} below physical floor {min_rtt}"
        );
    }

    #[test]
    fn rtt_roughly_symmetric() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let ab = engine.base_rtt(a, b).unwrap();
        let ba = engine.base_rtt(b, a).unwrap();
        // Two-way base construction makes RTT direction-symmetric.
        assert!((ab - ba).abs() < 1e-9, "asymmetry (ab={ab}, ba={ba})");
    }

    #[test]
    fn same_as_hosts_ping_without_routing() {
        let f = fixture();
        let mut reg = HostRegistry::new();
        let asn = f.topo.eyeball_asns()[0];
        let a = reg.add_host_in_as(f.topo, asn, None).unwrap();
        let b = reg.add_host_in_as(f.topo, asn, None).unwrap();
        let reg: &'static HostRegistry = Box::leak(Box::new(reg));
        let engine = PingEngine::new(f.topo, f.router, reg, LatencyModel::default());
        assert_eq!(engine.as_path(a, b).unwrap().to_vec(), vec![asn]);
        assert!(engine.base_rtt(a, b).unwrap() >= 0.0);
    }

    #[test]
    fn outage_kills_pings_during_window() {
        let f = fixture();
        let (mut engine, a, b) = two_hosts(&f);
        let path = engine.as_path(a, b).unwrap();
        let transit = path[1]; // some AS in the middle
        engine.set_faults(FaultPlan::none().with_outage(transit, SimTime(100.0), SimTime(200.0)));
        let mut rng = StdRng::seed_from_u64(2);
        assert!(engine.ping(a, b, SimTime(150.0), &mut rng).is_none());
        // Outside the window pings mostly succeed.
        let ok = (0..10)
            .filter(|i| {
                engine
                    .ping(a, b, SimTime(300.0 + *i as f64), &mut rng)
                    .is_some()
            })
            .count();
        assert!(ok >= 8);
    }

    #[test]
    fn lossy_as_degrades_success_rate() {
        let f = fixture();
        let (mut engine, a, b) = two_hosts(&f);
        let path = engine.as_path(a, b).unwrap();
        engine.set_faults(FaultPlan::none().with_lossy_as(path[0], 0.9));
        let mut rng = StdRng::seed_from_u64(3);
        let ok = (0..100)
            .filter(|i| engine.ping(a, b, SimTime(*i as f64), &mut rng).is_some())
            .count();
        assert!(ok < 30, "90% lossy AS should kill most pings, got {ok}");
    }

    #[test]
    fn ping_series_returns_replies() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let mut rng = StdRng::seed_from_u64(4);
        let replies = engine.ping_series(a, b, SimTime(0.0), 6, 300.0, &mut rng);
        assert!(replies.len() >= 4, "got {}", replies.len());
    }

    #[test]
    fn mid_longitude_handles_antimeridian() {
        assert!((mid_longitude(10.0, 20.0) - 15.0).abs() < 1e-9);
        // Tokyo (139.65) to LA (-118.24): midpoint crosses the Pacific,
        // not Greenwich.
        let m = mid_longitude(139.65, -118.24);
        assert!(
            !(-60.0..=60.0).contains(&m),
            "midpoint {m} crossed wrong way"
        );
    }

    #[test]
    fn unroutable_pair_reports_none() {
        // Build a two-AS topology with no links at all.
        use shortcuts_geo::CountryCode;
        use shortcuts_topology::{AsInfo, AsType, IpAllocator};
        let mut alloc = IpAllocator::default();
        let mut b = Topology::builder();
        for asn in [1u32, 2] {
            b.add_as(AsInfo {
                asn: Asn(asn),
                as_type: AsType::Eyeball,
                home_country: CountryCode::new("US").unwrap(),
                countries: vec![],
                pops: vec![],
                prefixes: vec![alloc.alloc_prefix()],
                user_share: 0.1,
                offers_cloud: false,
            });
        }
        let nyc = b.cities().by_name("NewYork").unwrap().id;
        b.add_pop(Asn(1), nyc);
        b.add_pop(Asn(2), nyc);
        let topo: &'static Topology = Box::leak(Box::new(b.build()));
        let router: &'static Router<'static> = Box::leak(Box::new(Router::new(topo)));
        let mut reg = HostRegistry::new();
        let a = reg.add_host(topo, Asn(1), None, HostKind::Probe).unwrap();
        let c = reg.add_host(topo, Asn(2), None, HostKind::Probe).unwrap();
        let reg: &'static HostRegistry = Box::leak(Box::new(reg));
        let engine = PingEngine::new(topo, router, reg, LatencyModel::default());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(engine.ping(a, c, SimTime(0.0), &mut rng).is_none());
        assert_eq!(engine.stats().unroutable, 1);
    }
}
