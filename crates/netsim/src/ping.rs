//! The ping engine: end-to-end RTT sampling between registered hosts.
//!
//! Composes the stack: resolve hosts → policy AS path (cached per
//! destination by [`Router`]) → router-level expansion → base RTT →
//! noise/faults → one observed sample. The deterministic part
//! (path + base RTT) is cached per host pair because the campaign pings
//! the same pairs six times per window, 45 rounds in a row.
//!
//! The engine co-owns its topology, router and host registry behind
//! `Arc`s and holds **no per-campaign state**: everything inside is
//! either immutable or a deterministic cache, so one engine — and with
//! it the pair cache and the router's destination tables — is shared
//! by every campaign of a scenario sweep. Per-campaign concerns
//! (a fault plan, ping accounting) live in [`PingHandle`], a cheap
//! per-campaign view of the shared engine. The [`Pinger`] trait
//! abstracts over the two so measurement code works with either.
//!
//! ## The batched kernel
//!
//! Scalar pings ([`PingEngine::ping`]) resolve the pair on every call:
//! a shard lock, a hash probe, an `Arc` bump — six times per
//! measurement window. Round execution instead batches:
//! [`PingEngine::resolve_pairs`] resolves a whole round's pair set in
//! grouped flat passes (each cache shard locked once, misses expanded
//! data-parallel per destination AS, one bulk insert per shard) into a
//! [`PairBlock`] — a struct-of-arrays snapshot of the resolved facts —
//! and [`PingEngine::sample_window_block`] then samples a window from
//! a block row in a tight, allocation-free loop. RNG draws are
//! replicated exactly, so batched results are bit-identical to the
//! scalar path; the scalar path survives as the equivalence oracle.
//! AS paths are interned ([`PathInterner`]) so the heavily shared
//! forward/reverse arrays are stored — and churn-checked — once per
//! distinct path instead of once per pair.

use crate::clock::SimTime;
use crate::fasthash::FastMap;
use crate::fault::FaultPlan;
use crate::host::{HostId, HostRegistry};
use crate::latency::LatencyModel;
use crate::path::expand_path;
use crate::traceroute::Traceroute;
use parking_lot::RwLock;
use rand::Rng;
use rayon::prelude::*;
use shortcuts_telemetry::Field;
use shortcuts_topology::routing::Router;
use shortcuts_topology::{Asn, NodeId, PathInterner, Topology, TopologyDelta};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Cached deterministic path facts for a host pair.
#[derive(Debug, Clone)]
struct PairInfo {
    /// Base RTT (deterministic part), ms.
    base_ms: f64,
    /// AS-level path (for fault checks and diagnostics). Read-only
    /// after construction, so it is shared — handing it out is a
    /// refcount bump, never a per-ping deep clone.
    as_path: Arc<[Asn]>,
    /// Reverse AS-level path (the echo's return route). Kept so churn
    /// revalidation can check *both* directions a cached base RTT
    /// depends on against a delta's removed links.
    rev_path: Arc<[Asn]>,
    /// Midpoint longitude for the diurnal term.
    mid_lon: f64,
}

/// Statistics the engine keeps about itself (diagnostics/benchmarks).
#[derive(Debug, Clone, Copy, Default)]
pub struct PingStats {
    /// Pings attempted.
    pub attempts: u64,
    /// Pings that returned a reply.
    pub replies: u64,
    /// Pings lost to noise or faults.
    pub losses: u64,
    /// Pings that failed because no route exists.
    pub unroutable: u64,
}

/// Lock-free counters behind [`PingStats`]: the campaign's parallel
/// executor hammers these from every worker thread, so they are plain
/// relaxed atomics rather than a lock.
#[derive(Debug, Default)]
struct StatCounters {
    attempts: AtomicU64,
    replies: AtomicU64,
    losses: AtomicU64,
    unroutable: AtomicU64,
}

impl StatCounters {
    /// Adds a locally accumulated tally, skipping zero fields — a
    /// tally flush is the only counter traffic the batched kernel
    /// generates, so flushes should be as cheap as the common case
    /// (no losses, no unroutables) allows.
    fn flush(&self, t: &SampleTally) {
        if t.attempts > 0 {
            self.attempts.fetch_add(t.attempts, Ordering::Relaxed);
        }
        if t.replies > 0 {
            self.replies.fetch_add(t.replies, Ordering::Relaxed);
        }
        if t.losses > 0 {
            self.losses.fetch_add(t.losses, Ordering::Relaxed);
        }
        if t.unroutable > 0 {
            self.unroutable.fetch_add(t.unroutable, Ordering::Relaxed);
        }
    }
}

/// Locally accumulated window statistics. The batched kernel samples
/// windows in chunks per worker; accumulating into one of these and
/// flushing per chunk ([`PingHandle::flush_tally`]) replaces four
/// shared-cache-line `fetch_add`s *per window* with a handful per
/// chunk. Totals are identical to per-window accounting — the shared
/// counters are relaxed, so only the flush granularity changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleTally {
    /// Pings attempted.
    pub attempts: u64,
    /// Pings that returned a reply.
    pub replies: u64,
    /// Pings lost to noise or faults.
    pub losses: u64,
    /// Pings that failed because no route exists.
    pub unroutable: u64,
}

/// Health snapshot of a (possibly long-lived, shared) engine stack:
/// how warm its caches are and how much traffic it has carried. This
/// is what a measurement *service* reports per pooled engine (`STATS`)
/// and what `sweep` prints as its end-of-run summary line.
///
/// All counters are monotonic over the engine's lifetime and read with
/// relaxed ordering — each is exact, and cross-counter totals are
/// exact whenever no ping is mid-flight on another thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Pair-cache lookups that found a resident entry.
    pub pair_cache_hits: u64,
    /// Pair-cache lookups that had to expand the pair first.
    pub pair_cache_misses: u64,
    /// Host pairs currently resident in the pair cache.
    pub pair_cache_entries: u64,
    /// Destination routing tables resident in the router's cache.
    pub router_tables_resident: u64,
    /// Pings attempted through the engine (all campaigns, all
    /// sessions).
    pub pings_sent: u64,
    /// Approximate bytes of resident routing tables.
    pub router_resident_bytes: u64,
    /// Routing tables dropped by the router's byte budget.
    pub router_evictions: u64,
    /// Routing-table misses on previously resident destinations — the
    /// recomputation an earlier eviction deferred.
    pub router_recomputes: u64,
    /// Approximate bytes resident across the pair cache's shards.
    pub pair_resident_bytes: u64,
    /// Pair entries dropped by the per-shard byte budget.
    pub pair_evictions: u64,
    /// Stale routing tables brought current by incremental repair
    /// (rather than a full per-destination recompute).
    pub tables_repaired: u64,
    /// Route entries re-examined by incremental repairs — the actual
    /// sweep work churn cost, vs. a full rebuild's `O(nodes)` each.
    pub entries_rescanned: u64,
    /// Stale routing tables that fell back to a full view recompute
    /// (restoration batches, majority-dirty tables, ablation policy).
    pub full_rebuilds: u64,
    /// Stale pair entries revalidated in place — their stored forward
    /// and reverse paths crossed no dirty link, so the recompute was
    /// skipped entirely.
    pub pair_revalidated: u64,
    /// Distinct AS paths interned fresh (each owns one shared
    /// allocation all pairs using that path point at).
    pub paths_interned: u64,
    /// Path-interning requests served by an already-live allocation —
    /// pair entries whose path arrays cost zero additional bytes.
    pub path_dedup_hits: u64,
}

impl EngineStats {
    /// Fraction of pair lookups served from cache (0 when idle).
    pub fn pair_cache_hit_rate(&self) -> f64 {
        let total = self.pair_cache_hits + self.pair_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.pair_cache_hits as f64 / total as f64
        }
    }

    /// The stats as a flat field list — the single source both the
    /// `STATS` summary line and the `METRICS` exposition render from,
    /// so the two surfaces cannot drift.
    pub fn fields(&self) -> Vec<Field> {
        vec![
            Field::int("pair_hits", self.pair_cache_hits),
            Field::int("pair_misses", self.pair_cache_misses),
            Field::rate("pair_hit_rate", self.pair_cache_hit_rate()),
            Field::int("pair_entries", self.pair_cache_entries),
            Field::int("tables_resident", self.router_tables_resident),
            Field::int("pings_sent", self.pings_sent),
            Field::int("tables_bytes", self.router_resident_bytes),
            Field::int("table_evictions", self.router_evictions),
            Field::int("table_recomputes", self.router_recomputes),
            Field::int("pair_bytes", self.pair_resident_bytes),
            Field::int("pair_evictions", self.pair_evictions),
            Field::int("tables_repaired", self.tables_repaired),
            Field::int("entries_rescanned", self.entries_rescanned),
            Field::int("full_rebuilds", self.full_rebuilds),
            Field::int("pair_revalidated", self.pair_revalidated),
            Field::int("paths_interned", self.paths_interned),
            Field::int("path_dedup_hits", self.path_dedup_hits),
        ]
    }

    /// One-line human/machine-readable summary, `key=value` separated
    /// by spaces — the service's `STATS` payload format. Rendered from
    /// [`EngineStats::fields`].
    pub fn summary(&self) -> String {
        shortcuts_telemetry::kv_summary(&self.fields())
    }
}

/// Shards in the pair cache. First-touch rounds are write-heavy — the
/// campaign's sharded scheduler can have several rounds' worth of
/// worker threads inserting fresh pairs at once — so the cache is
/// split into independently locked shards to keep writers from
/// serializing on one `RwLock`. 64 shards ≫ any realistic core count.
/// Public so front ends can validate a memory budget's pair share
/// (each shard must afford at least one resident entry).
pub const CACHE_SHARDS: usize = 64;

/// One resident pair entry (`info == None` = known-unroutable pair)
/// with its CLOCK bookkeeping.
struct CacheEntry {
    info: Option<Arc<PairInfo>>,
    /// CLOCK reference bit — set on every hit (under the shard's
    /// *read* lock, hence atomic), cleared when the hand passes.
    referenced: AtomicBool,
    /// Bytes this entry is accounted at (fixed at insert).
    bytes: u32,
    /// Churn epoch the entry is known valid at. Lookups under a newer
    /// engine epoch come back [`PairLookup::Stale`]; entries whose
    /// paths dodge every intervening delta are re-stamped in place
    /// (atomic, under the shard's *read* lock), the rest recomputed.
    epoch: AtomicU64,
}

/// Outcome of an epoch-aware pair-cache lookup.
enum PairLookup {
    /// Resident and current: use as-is (counted as a hit).
    Hit(Option<Arc<PairInfo>>),
    /// Resident but stamped at an older epoch. The caller decides —
    /// revalidate against the dirty history, or recompute — so this
    /// outcome alone counts neither hit nor miss.
    Stale(Option<Arc<PairInfo>>, u64),
    /// Not resident (counted as a miss).
    Miss,
}

/// Resident pair facts of one shard.
type PairMap = FastMap<(HostId, HostId), CacheEntry>;

/// One freshly expanded batch entry awaiting publication: the pair's
/// slot in the [`PairBlock`], its facts (`None` = unroutable), and the
/// bytes its cache entry will be charged.
type ComputedEntry = (u32, Option<Arc<PairInfo>>, u32);

/// Approximate bytes one cached pair costs: key, entry, hash-map and
/// clock-ring bookkeeping, plus the path payload this entry is
/// *charged* for. Paths are interned, so an entry pays only for the
/// ASN array bytes its own interning created fresh
/// (`charged_path_asns`); an entry pointing at paths another resident
/// pair already owns charges zero for them — the allocation exists
/// once, so the gauge counts it once.
fn entry_bytes(info: &Option<Arc<PairInfo>>, charged_path_asns: usize) -> u32 {
    const FIXED: usize = 2 * std::mem::size_of::<(HostId, HostId)>() // map key + ring slot
        + std::mem::size_of::<CacheEntry>()
        + 16; // hash-map slot overhead
    let payload = match info {
        None => 0,
        // PairInfo + Arc refcounts + freshly interned path bytes.
        Some(_) => {
            std::mem::size_of::<PairInfo>() + 32 + charged_path_asns * std::mem::size_of::<Asn>()
        }
    };
    (FIXED + payload) as u32
}

/// Minimum bytes one resident pair costs (the unroutable-pair floor) —
/// what `MemoryBudget::ensure_fits` should charge per shard when a
/// front end validates a budget before running.
pub fn pair_entry_min_bytes() -> u64 {
    u64::from(entry_bytes(&None, 0))
}

/// Write-locked state of one shard: the resident map plus its CLOCK
/// machinery — a ring of resident keys, the hand position, and the
/// byte gauge the shard budget is enforced against.
#[derive(Default)]
struct ShardState {
    map: PairMap,
    /// Resident keys in (approximate) insertion order; eviction swaps
    /// removed keys out, so the ring stays dense and O(1) to maintain.
    ring: Vec<(HostId, HostId)>,
    /// CLOCK hand: index into `ring` the next sweep starts at.
    hand: usize,
    /// Approximate resident bytes of this shard.
    bytes: u64,
}

/// One independently locked portion of the pair cache, with its own
/// hit/miss/eviction telemetry so the counters contend exactly as
/// little as the lock they sit next to.
#[derive(Default)]
struct CacheShard {
    state: RwLock<ShardState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Stale entries re-stamped in place after their paths checked
    /// clean against the dirty history (each also counts as a hit).
    revalidated: AtomicU64,
}

/// Pair cache: `Arc` per entry so a hit is a refcount bump, not a
/// deep clone of the AS path under the read lock; one lock per shard
/// so concurrent first-touch inserts rarely contend. Hit/miss counters
/// are per-shard relaxed atomics feeding [`EngineStats`] — health
/// telemetry for long-lived engines (the service's `STATS` command),
/// never control flow — summed on read so the all-hits steady state
/// never bounces one shared cache line across worker threads.
///
/// Under a byte budget each shard independently enforces its share
/// (`budget / CACHE_SHARDS`) with a clock hand over its resident
/// keys: inserts that push the shard over budget sweep the ring,
/// clearing reference bits and evicting the first unreferenced entry
/// until the shard fits. Every entry is a deterministic world fact,
/// so an evicted pair re-expands bit-identically on its next miss.
struct PairCache {
    shards: Vec<CacheShard>,
    /// Per-shard byte allowance; `None` = never evict.
    shard_budget: Option<u64>,
}

impl PairCache {
    fn new(budget_bytes: Option<u64>) -> Self {
        PairCache {
            shards: (0..CACHE_SHARDS).map(|_| CacheShard::default()).collect(),
            shard_budget: budget_bytes.map(|b| b / CACHE_SHARDS as u64),
        }
    }

    /// The shard index owning a pair: a SplitMix64 finalizer over both
    /// host ids, so pairs sharing a source still spread across shards.
    /// Exposed separately from [`PairCache::shard`] so the batch
    /// resolver can group a round's pairs per shard before touching
    /// any lock.
    fn shard_index(key: (HostId, HostId)) -> usize {
        let mut z = (u64::from(key.0 .0) << 32) | u64::from(key.1 .0);
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as usize) % CACHE_SHARDS
    }

    /// The shard owning a pair.
    fn shard(&self, key: (HostId, HostId)) -> &CacheShard {
        &self.shards[Self::shard_index(key)]
    }

    fn get(&self, key: (HostId, HostId), epoch: u64) -> PairLookup {
        let shard = self.shard(key);
        let lookup = {
            let st = shard.state.read();
            match st.map.get(&key) {
                Some(e) => {
                    let stamp = e.epoch.load(Ordering::Relaxed);
                    if stamp == epoch {
                        e.referenced.store(true, Ordering::Relaxed);
                        PairLookup::Hit(e.info.clone())
                    } else {
                        PairLookup::Stale(e.info.clone(), stamp)
                    }
                }
                None => PairLookup::Miss,
            }
        };
        match lookup {
            PairLookup::Hit(_) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
            }
            PairLookup::Miss => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
            }
            PairLookup::Stale(..) => {}
        }
        lookup
    }

    /// Re-stamps a stale entry whose paths survived every delta since
    /// its stamp: the stored facts are still exact at `epoch`, so this
    /// counts as a (revalidated) hit, not a miss.
    fn refresh(&self, key: (HostId, HostId), epoch: u64) {
        let shard = self.shard(key);
        {
            let st = shard.state.read();
            if let Some(e) = st.map.get(&key) {
                e.epoch.store(epoch, Ordering::Relaxed);
                e.referenced.store(true, Ordering::Relaxed);
            }
        }
        shard.hits.fetch_add(1, Ordering::Relaxed);
        shard.revalidated.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a stale entry that failed revalidation — the deferred
    /// miss its recompute pays for.
    fn count_miss(&self, key: (HostId, HostId)) {
        self.shard(key).misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Inserts one freshly computed entry. `bytes` is the charge the
    /// expansion computed (fixed cost + freshly interned path bytes) —
    /// precomputed by the caller because only the interning site knows
    /// which path allocations this entry created.
    fn insert(&self, key: (HostId, HostId), info: Option<Arc<PairInfo>>, epoch: u64, bytes: u32) {
        let shard = self.shard(key);
        let mut st = shard.state.write();
        insert_locked(&mut st, key, info, epoch, bytes);
        if let Some(budget) = self.shard_budget {
            evict_shard_over_budget(&mut st, budget, key, &shard.evictions);
        }
    }

    /// Bulk insert: all entries of one shard under a single write
    /// lock. Entry semantics (incumbent handling, byte gauge, CLOCK
    /// eviction pressure) are identical to per-entry [`insert`] —
    /// the batch only amortizes the lock acquisition.
    fn insert_many(
        &self,
        shard_idx: usize,
        entries: impl Iterator<Item = ((HostId, HostId), Option<Arc<PairInfo>>, u32)>,
        epoch: u64,
    ) {
        let shard = &self.shards[shard_idx];
        let mut st = shard.state.write();
        for (key, info, bytes) in entries {
            debug_assert_eq!(Self::shard_index(key), shard_idx);
            insert_locked(&mut st, key, info, epoch, bytes);
            if let Some(budget) = self.shard_budget {
                evict_shard_over_budget(&mut st, budget, key, &shard.evictions);
            }
        }
    }

    /// Pairs currently resident across all shards.
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.state.read().map.len()).sum()
    }

    /// Total (hits, misses) summed across shards.
    fn hit_miss(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            (
                h + s.hits.load(Ordering::Relaxed),
                m + s.misses.load(Ordering::Relaxed),
            )
        })
    }

    /// Approximate resident bytes across all shards.
    fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.state.read().bytes).sum()
    }

    /// Entries evicted by the budget, across all shards.
    fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .sum()
    }

    /// Stale entries revalidated in place, across all shards.
    fn revalidated(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.revalidated.load(Ordering::Relaxed))
            .sum()
    }
}

/// Insert/replace one entry in a shard whose write lock the caller
/// holds — the shared body of [`PairCache::insert`] and
/// [`PairCache::insert_many`].
fn insert_locked(
    st: &mut ShardState,
    key: (HostId, HostId),
    info: Option<Arc<PairInfo>>,
    epoch: u64,
    bytes: u32,
) {
    if let Some(e) = st.map.get_mut(&key) {
        if e.epoch.load(Ordering::Relaxed) >= epoch {
            // A racing expander won the slot at the same (or a
            // newer) epoch; both computed the same deterministic
            // facts, so keep the incumbent.
            return;
        }
        // Stale incumbent: replace in place. The key keeps its
        // ring slot; only the byte gauge moves.
        let old_bytes = e.bytes;
        *e = CacheEntry {
            info,
            referenced: AtomicBool::new(true),
            bytes,
            epoch: AtomicU64::new(epoch),
        };
        st.bytes = st.bytes - u64::from(old_bytes) + u64::from(bytes);
    } else {
        st.map.insert(
            key,
            CacheEntry {
                info,
                referenced: AtomicBool::new(true),
                bytes,
                epoch: AtomicU64::new(epoch),
            },
        );
        st.ring.push(key);
        st.bytes += u64::from(bytes);
    }
}

/// CLOCK sweep over one shard (holding its write lock): advance the
/// hand over the ring, clearing reference bits (the second chance) and
/// evicting unreferenced entries until the shard fits its budget.
/// `keep` — the entry just inserted — is never evicted, so a lookup
/// cannot thrash against its own result; two revolutions bound the
/// sweep even when the budget is unsatisfiable.
fn evict_shard_over_budget(
    st: &mut ShardState,
    budget: u64,
    keep: (HostId, HostId),
    evictions: &AtomicU64,
) {
    let mut scanned = 0usize;
    let limit = 2 * st.ring.len();
    while st.bytes > budget && st.ring.len() > 1 && scanned < limit {
        scanned += 1;
        if st.hand >= st.ring.len() {
            st.hand = 0;
        }
        let k = st.ring[st.hand];
        if k == keep {
            st.hand += 1;
            continue;
        }
        let referenced = st.map[&k].referenced.swap(false, Ordering::Relaxed);
        if referenced {
            st.hand += 1; // second chance
            continue;
        }
        let e = st.map.remove(&k).expect("clock ring out of sync with map");
        st.bytes -= u64::from(e.bytes);
        // O(1) removal; the swapped-in tail key inherits this hand
        // position, so the hand does not advance.
        st.ring.swap_remove(st.hand);
        evictions.fetch_add(1, Ordering::Relaxed);
    }
}

/// What one applied delta batch dirtied, in AS terms: the removed
/// links (canonical `(min, max)` endpoint order) and downed ASes a
/// cached pair path must be checked against, plus whether the batch
/// restored anything (restorations can *improve* routes, so no stored
/// path proves a cached entry still optimal — everything stale is
/// recomputed).
#[derive(Debug, Default)]
struct DirtyEpoch {
    removed: HashSet<(Asn, Asn)>,
    down: HashSet<Asn>,
    restored: bool,
}

impl DirtyEpoch {
    fn from_batch(batch: &[TopologyDelta]) -> Self {
        let mut d = DirtyEpoch::default();
        for delta in batch {
            match *delta {
                TopologyDelta::LinkDown { a, b } => {
                    d.removed.insert((a.min(b), a.max(b)));
                }
                TopologyDelta::AsDown { asn } => {
                    d.down.insert(asn);
                }
                TopologyDelta::LinkUp { .. } | TopologyDelta::AsUp { .. } => d.restored = true,
            }
        }
        d
    }

    /// Does `path` cross anything this batch took down?
    fn crosses(&self, path: &[Asn]) -> bool {
        if !self.down.is_empty() && path.iter().any(|a| self.down.contains(a)) {
            return true;
        }
        !self.removed.is_empty()
            && path
                .windows(2)
                .any(|w| self.removed.contains(&(w[0].min(w[1]), w[0].max(w[1]))))
    }
}

/// Struct-of-arrays snapshot of one batch's resolved pair facts — the
/// output of [`PingEngine::resolve_pairs`] and the input of
/// [`PingEngine::sample_window_block`].
///
/// Each distinct `(src, dst)` pair of the batch owns one row (slot):
/// base RTT, diurnal midpoint longitude and the shared forward AS
/// path, laid out in parallel arrays so a round's sampling loop walks
/// flat `f64` slices instead of chasing `Arc<PairInfo>` pointers
/// through the cache on every window. Unroutable pairs hold a row
/// with no path. The block is a *snapshot*: it pins the facts at the
/// epoch `resolve_pairs` ran at, which is exactly the semantics a
/// round wants (churn applies between rounds, never mid-round).
pub struct PairBlock {
    /// Row index per distinct pair, in first-seen batch order.
    slots: FastMap<(HostId, HostId), u32>,
    /// Base RTT per row, ms (unspecified for unroutable rows).
    base_ms: Vec<f64>,
    /// Diurnal midpoint longitude per row.
    mid_lon: Vec<f64>,
    /// Forward AS path per row; `None` = unroutable pair.
    paths: Vec<Option<Arc<[Asn]>>>,
}

impl PairBlock {
    fn with_capacity(n: usize) -> Self {
        PairBlock {
            slots: FastMap::with_capacity_and_hasher(n, Default::default()),
            base_ms: Vec::with_capacity(n),
            mid_lon: Vec::with_capacity(n),
            paths: Vec::with_capacity(n),
        }
    }

    /// Sizes the row arrays for `n` slots of unroutable defaults;
    /// [`PairBlock::set_row`] then fills routable rows in place. Rows
    /// are written at their slot index (not pushed) so the resolver's
    /// passes can fill them in whatever order the shards come up.
    fn size_rows(&mut self, n: usize) {
        self.base_ms.resize(n, f64::NAN);
        self.mid_lon.resize(n, 0.0);
        self.paths.resize(n, None);
    }

    fn set_row(&mut self, slot: u32, info: Option<&PairInfo>) {
        if let Some(p) = info {
            let i = slot as usize;
            self.base_ms[i] = p.base_ms;
            self.mid_lon[i] = p.mid_lon;
            self.paths[i] = Some(Arc::clone(&p.as_path));
        }
    }

    /// The row holding `(src, dst)`'s facts, or `None` if the pair was
    /// not part of the batch this block resolved.
    pub fn slot(&self, src: HostId, dst: HostId) -> Option<u32> {
        self.slots.get(&(src, dst)).copied()
    }

    /// Whether the row's pair is routable (has a forward path).
    pub fn is_routable(&self, slot: u32) -> bool {
        self.paths[slot as usize].is_some()
    }

    /// Distinct pairs resolved in this block.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when the block resolved no pairs.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// The ping engine. `Sync`: all interior mutability is a read-mostly
/// sharded pair cache behind per-shard `RwLock`s plus atomic counters,
/// so one engine is shared by every measurement worker thread — and,
/// since it co-owns its inputs and carries no per-campaign state, by
/// every campaign of a sweep.
///
/// Under topology churn ([`PingEngine::apply_delta`]) the engine stays
/// shareable but is no longer *stateless*: applied deltas permanently
/// advance its epoch and its router's view. Campaigns that churn must
/// therefore run on a private engine, never one pooled across
/// unrelated sessions.
pub struct PingEngine {
    topo: Arc<Topology>,
    router: Arc<Router>,
    hosts: Arc<HostRegistry>,
    model: LatencyModel,
    cache: PairCache,
    /// Content-addressed store of the live AS-path population: every
    /// `PairInfo` path is interned here, so pairs sharing a route
    /// share one allocation (and one byte charge, and one churn
    /// check).
    interner: PathInterner,
    stats: StatCounters,
    /// Current churn epoch == number of delta batches applied. Pair
    /// entries are stamped with the epoch they were computed (or last
    /// revalidated) at.
    epoch: AtomicU64,
    /// Per-epoch dirty summaries, indexed by the epoch they *created*
    /// (`dirty[e]` is the batch that moved the engine from epoch `e`
    /// to `e + 1`). Read on every stale lookup, written once per
    /// batch.
    dirty: RwLock<Vec<DirtyEpoch>>,
}

impl PingEngine {
    /// Creates an engine over a topology, router, host registry and
    /// latency model, with an unbounded pair cache.
    pub fn new(
        topo: Arc<Topology>,
        router: Arc<Router>,
        hosts: Arc<HostRegistry>,
        model: LatencyModel,
    ) -> Self {
        Self::with_budget(topo, router, hosts, model, None)
    }

    /// As [`PingEngine::new`], but bounds the pair cache to
    /// `pair_budget_bytes` (typically a
    /// [`shortcuts_topology::MemoryBudget`]'s pair share), split
    /// evenly across the shards and enforced by per-shard clock-hand
    /// eviction. `None` keeps the grow-forever behaviour.
    pub fn with_budget(
        topo: Arc<Topology>,
        router: Arc<Router>,
        hosts: Arc<HostRegistry>,
        model: LatencyModel,
        pair_budget_bytes: Option<u64>,
    ) -> Self {
        // Route resolution trusts `Host::node` as a dense index into
        // `topo`'s node space; a registry built against a different
        // topology would silently resolve other ASes' routes. One
        // cheap construction-time check keeps that a loud failure.
        debug_assert!(
            hosts
                .iter()
                .all(|h| topo.node_index().node(h.asn) == Some(h.node)),
            "host registry was built against a different topology"
        );
        PingEngine {
            topo,
            router,
            hosts,
            model,
            cache: PairCache::new(pair_budget_bytes),
            interner: PathInterner::new(),
            stats: StatCounters::default(),
            epoch: AtomicU64::new(0),
            dirty: RwLock::new(Vec::new()),
        }
    }

    /// Applies one batch of topology deltas: the router advances its
    /// epoch (stale destination tables are repaired lazily on access)
    /// and the engine records the batch's dirty summary so cached
    /// pairs whose paths dodge every dirty link survive churn without
    /// recomputation.
    ///
    /// Same-AS pairs never consult the router, so an `AsDown` leaves
    /// intra-AS pings working — hosts inside a withdrawn AS still
    /// reach each other, they just stop being routable from outside.
    pub fn apply_delta(&self, batch: &[TopologyDelta]) {
        self.router.apply_delta(batch);
        let mut dirty = self.dirty.write();
        dirty.push(DirtyEpoch::from_batch(batch));
        self.epoch.store(dirty.len() as u64, Ordering::Release);
    }

    /// Current churn epoch (batches applied so far).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Do a stale pair's stored facts survive every delta batch from
    /// `stamp` (exclusive of nothing — `dirty[stamp..cur]` is exactly
    /// the history it missed) to `cur`? Unroutable pairs survive any
    /// deletion-only span: removing links never creates a route.
    fn paths_still_valid(&self, info: &Option<Arc<PairInfo>>, stamp: u64, cur: u64) -> bool {
        let dirty = self.dirty.read();
        for batch in &dirty[stamp as usize..cur as usize] {
            if batch.restored {
                return false;
            }
            if let Some(p) = info {
                if batch.crosses(&p.as_path) || batch.crosses(&p.rev_path) {
                    return false;
                }
            }
        }
        true
    }

    /// The topology the engine routes over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The router whose destination tables the engine resolves paths
    /// with (shared — a sweep warms it once for all campaigns).
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// The host registry.
    pub fn hosts(&self) -> &HostRegistry {
        &self.hosts
    }

    /// The latency model in use.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// Engine statistics so far (a consistent-enough snapshot: each
    /// counter is exact; totals are exact whenever no ping is mid-
    /// flight on another thread).
    pub fn stats(&self) -> PingStats {
        PingStats {
            attempts: self.stats.attempts.load(Ordering::Relaxed),
            replies: self.stats.replies.load(Ordering::Relaxed),
            losses: self.stats.losses.load(Ordering::Relaxed),
            unroutable: self.stats.unroutable.load(Ordering::Relaxed),
        }
    }

    /// Engine-stack health: cache warmth and traffic counters for this
    /// engine and the router it resolves paths with. See
    /// [`EngineStats`].
    pub fn engine_stats(&self) -> EngineStats {
        let (pair_cache_hits, pair_cache_misses) = self.cache.hit_miss();
        let router = self.router.stats();
        let intern = self.interner.stats();
        EngineStats {
            pair_cache_hits,
            pair_cache_misses,
            pair_cache_entries: self.cache.len() as u64,
            router_tables_resident: router.tables_resident,
            pings_sent: self.stats.attempts.load(Ordering::Relaxed),
            router_resident_bytes: router.resident_bytes,
            router_evictions: router.evictions,
            router_recomputes: router.recomputes,
            pair_resident_bytes: self.cache.resident_bytes(),
            pair_evictions: self.cache.evictions(),
            tables_repaired: router.tables_repaired,
            entries_rescanned: router.entries_rescanned,
            full_rebuilds: router.full_rebuilds,
            pair_revalidated: self.cache.revalidated(),
            paths_interned: intern.interned,
            path_dedup_hits: intern.dedup_hits,
        }
    }

    /// Deterministic path facts for a pair, computed once per epoch —
    /// and far less often than that in practice: a stale entry whose
    /// forward and reverse paths cross no dirty link is revalidated in
    /// place instead of re-expanded.
    fn pair_info(&self, src: HostId, dst: HostId) -> Option<Arc<PairInfo>> {
        let epoch = self.epoch();
        match self.cache.get((src, dst), epoch) {
            PairLookup::Hit(cached) => return cached,
            PairLookup::Stale(cached, stamp) => {
                if self.paths_still_valid(&cached, stamp, epoch) {
                    self.cache.refresh((src, dst), epoch);
                    return cached;
                }
                // The stored paths crossed a dirty link — this is the
                // recompute the delta actually forced.
                self.cache.count_miss((src, dst));
            }
            PairLookup::Miss => {}
        }
        let (info, bytes) = self.compute_pair(src, dst);
        self.cache.insert((src, dst), info.clone(), epoch, bytes);
        info
    }

    /// Expands one pair from scratch (routes, router-level expansion,
    /// base RTT, interned paths). Returns the facts plus the bytes the
    /// cache should charge this entry for — fixed cost plus whatever
    /// path allocations *this* expansion interned fresh.
    fn compute_pair(&self, src: HostId, dst: HostId) -> (Option<Arc<PairInfo>>, u32) {
        let s = self.hosts.get(src);
        let d = self.hosts.get(dst);
        if s.asn == d.asn {
            return self.expand_same_as(src, dst);
        }
        // An echo round trip traverses the forward route AND the
        // (possibly different) return route; base RTT sums both
        // one-way expansions, which also makes RTT(a,b) == RTT(b,a)
        // exactly — matching the paper's symmetry observation.
        // Hosts carry their AS's dense node id, so the table
        // lookups skip the Asn→NodeId hash entirely.
        let fwd_as = self.router.as_path_between(s.node, d.node);
        let rev_as = self.router.as_path_between(d.node, s.node);
        match (fwd_as, rev_as) {
            (Some(fwd_as), Some(rev_as)) => self.expand_cross_as(src, dst, &fwd_as, &rev_as),
            _ => (None, entry_bytes(&None, 0)),
        }
    }

    /// Same-AS pair facts: intra-AS pings never consult the router.
    fn expand_same_as(&self, src: HostId, dst: HostId) -> (Option<Arc<PairInfo>>, u32) {
        let s = self.hosts.get(src);
        let d = self.hosts.get(dst);
        let access = s.access_ms + d.access_ms;
        let path = expand_path(
            &self.topo,
            &[s.asn],
            s.location,
            d.location,
            &self.model.expand,
        );
        let (as_path, fresh) = self.interner.intern(&[s.asn]);
        let charged = if fresh { as_path.len() } else { 0 };
        let info = Some(Arc::new(PairInfo {
            base_ms: self.model.base_rtt_ms(&path) + access,
            rev_path: Arc::clone(&as_path),
            as_path,
            mid_lon: mid_longitude(s.location.lon(), d.location.lon()),
        }));
        let bytes = entry_bytes(&info, charged);
        (info, bytes)
    }

    /// Cross-AS pair facts once both AS-level routes are known (the
    /// batch resolver computes routes group-wise before calling this).
    fn expand_cross_as(
        &self,
        src: HostId,
        dst: HostId,
        fwd_as: &[Asn],
        rev_as: &[Asn],
    ) -> (Option<Arc<PairInfo>>, u32) {
        let s = self.hosts.get(src);
        let d = self.hosts.get(dst);
        let access = s.access_ms + d.access_ms;
        let fwd = expand_path(
            &self.topo,
            fwd_as,
            s.location,
            d.location,
            &self.model.expand,
        );
        let rev = expand_path(
            &self.topo,
            rev_as,
            d.location,
            s.location,
            &self.model.expand,
        );
        let (as_path, fwd_fresh) = self.interner.intern(fwd_as);
        let (rev_path, rev_fresh) = self.interner.intern(rev_as);
        let charged =
            if fwd_fresh { as_path.len() } else { 0 } + if rev_fresh { rev_path.len() } else { 0 };
        let info = Some(Arc::new(PairInfo {
            base_ms: self.model.base_rtt_two_way(&fwd, &rev) + access,
            as_path,
            rev_path,
            mid_lon: mid_longitude(s.location.lon(), d.location.lon()),
        }));
        let bytes = entry_bytes(&info, charged);
        (info, bytes)
    }

    /// Resolves a whole batch of pairs (typically one round's plan) in
    /// flat passes and returns the facts as a [`PairBlock`]:
    ///
    /// 1. **Probe** — the batch is deduped and grouped by cache shard;
    ///    each shard's read lock is taken once for all its pairs, and
    ///    hit/miss counters are bumped once per shard, not per pair.
    /// 2. **Revalidate** — stale entries are checked against the dirty
    ///    history with results memoized per *unique path allocation*
    ///    (interning makes paths shared, so churn work scales with the
    ///    distinct-path population, not the pair count); survivors are
    ///    re-stamped shard-wise under one read lock each.
    /// 3. **Expand** — misses are split same-AS vs. cross-AS and the
    ///    cross-AS remainder grouped by destination node, so each
    ///    group resolves against one routing table; groups expand
    ///    data-parallel.
    /// 4. **Publish** — freshly expanded entries are bulk-inserted per
    ///    shard (one write lock each, identical per-entry semantics to
    ///    the scalar path's inserts, including eviction pressure).
    ///
    /// Every outcome counts in the cache telemetry exactly as the
    /// scalar path would count it — hit, revalidated-hit, or miss —
    /// once per distinct pair in the batch.
    pub fn resolve_pairs(&self, pairs: &[(HostId, HostId)]) -> PairBlock {
        self.resolve_pairs_indexed(pairs).0
    }

    /// [`PingEngine::resolve_pairs`] plus the slot of every *input*
    /// position (`index[j]` is the row of `pairs[j]`, duplicates
    /// included). The index falls out of the dedupe pass for free; the
    /// batched kernel uses it to map tasks to rows without re-hashing
    /// each pair through [`PairBlock::slot`].
    pub fn resolve_pairs_indexed(&self, pairs: &[(HostId, HostId)]) -> (PairBlock, Vec<u32>) {
        let epoch = self.epoch();
        let mut block = PairBlock::with_capacity(pairs.len());
        let mut keys: Vec<(HostId, HostId)> = Vec::with_capacity(pairs.len());
        let mut index: Vec<u32> = Vec::with_capacity(pairs.len());
        for &key in pairs {
            let next = keys.len() as u32;
            let slot = *block.slots.entry(key).or_insert_with(|| {
                keys.push(key);
                next
            });
            index.push(slot);
        }
        // Rows start as unroutable defaults; the passes below fill
        // routable facts in place at their slot index.
        block.size_rows(keys.len());

        // Pass 1: probe each shard once for all its pairs.
        let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); CACHE_SHARDS];
        for (i, &key) in keys.iter().enumerate() {
            by_shard[PairCache::shard_index(key)].push(i as u32);
        }
        let mut stale: Vec<(u32, Option<Arc<PairInfo>>, u64)> = Vec::new();
        let mut misses: Vec<u32> = Vec::new();
        for (sidx, members) in by_shard.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let shard = &self.cache.shards[sidx];
            let mut hits = 0u64;
            let mut missed = 0u64;
            {
                let st = shard.state.read();
                for &i in members {
                    match st.map.get(&keys[i as usize]) {
                        Some(e) => {
                            let stamp = e.epoch.load(Ordering::Relaxed);
                            if stamp == epoch {
                                e.referenced.store(true, Ordering::Relaxed);
                                block.set_row(i, e.info.as_deref());
                                hits += 1;
                            } else {
                                stale.push((i, e.info.clone(), stamp));
                            }
                        }
                        None => {
                            misses.push(i);
                            missed += 1;
                        }
                    }
                }
            }
            if hits > 0 {
                shard.hits.fetch_add(hits, Ordering::Relaxed);
            }
            if missed > 0 {
                shard.misses.fetch_add(missed, Ordering::Relaxed);
            }
        }

        // Pass 2: revalidate stale entries against the dirty history,
        // memoizing per (path allocation, stamp) — shared paths are
        // checked once, however many pairs point at them.
        if !stale.is_empty() {
            let mut refresh_by_shard: Vec<Vec<u32>> = vec![Vec::new(); CACHE_SHARDS];
            let mut invalid_by_shard = [0u64; CACHE_SHARDS];
            {
                let dirty = self.dirty.read();
                let mut span_restored: FastMap<u64, bool> = FastMap::default();
                let mut path_ok: FastMap<(usize, u64), bool> = FastMap::default();
                for (i, info, stamp) in stale.drain(..) {
                    let span = &dirty[stamp as usize..epoch as usize];
                    let restored = *span_restored
                        .entry(stamp)
                        .or_insert_with(|| span.iter().any(|b| b.restored));
                    let valid = !restored
                        && match &info {
                            // Unroutable pairs survive any deletion-only
                            // span: removing links never creates a route.
                            None => true,
                            Some(p) => {
                                let mut ok = |path: &Arc<[Asn]>| {
                                    let ptr = Arc::as_ptr(path).cast::<Asn>() as usize;
                                    *path_ok
                                        .entry((ptr, stamp))
                                        .or_insert_with(|| !span.iter().any(|b| b.crosses(path)))
                                };
                                ok(&p.as_path) && ok(&p.rev_path)
                            }
                        };
                    if valid {
                        let key = keys[i as usize];
                        refresh_by_shard[PairCache::shard_index(key)].push(i);
                        block.set_row(i, info.as_deref());
                    } else {
                        // Failed revalidation: the recompute below pays
                        // the miss the delta deferred.
                        invalid_by_shard[PairCache::shard_index(keys[i as usize])] += 1;
                        misses.push(i);
                    }
                }
            }
            for (sidx, &n) in invalid_by_shard.iter().enumerate() {
                if n > 0 {
                    self.cache.shards[sidx]
                        .misses
                        .fetch_add(n, Ordering::Relaxed);
                }
            }
            for (sidx, members) in refresh_by_shard.iter().enumerate() {
                if members.is_empty() {
                    continue;
                }
                let shard = &self.cache.shards[sidx];
                {
                    let st = shard.state.read();
                    for &i in members {
                        if let Some(e) = st.map.get(&keys[i as usize]) {
                            e.epoch.store(epoch, Ordering::Relaxed);
                            e.referenced.store(true, Ordering::Relaxed);
                        }
                    }
                }
                let k = members.len() as u64;
                shard.hits.fetch_add(k, Ordering::Relaxed);
                shard.revalidated.fetch_add(k, Ordering::Relaxed);
            }
        }

        // Pass 3: expand the misses. Same-AS pairs never touch the
        // router; cross-AS pairs group by destination node so each
        // group pins one routing table for all its sources. Failed
        // revalidations land here too — count their deferred miss now.
        let mut local: Vec<u32> = Vec::new();
        let mut groups: FastMap<NodeId, Vec<u32>> = FastMap::default();
        for &i in &misses {
            let (src, dst) = keys[i as usize];
            let s = self.hosts.get(src);
            let d = self.hosts.get(dst);
            if s.asn == d.asn {
                local.push(i);
            } else {
                groups.entry(d.node).or_default().push(i);
            }
        }
        let mut computed: Vec<ComputedEntry> = Vec::with_capacity(misses.len());
        for &i in &local {
            let (src, dst) = keys[i as usize];
            let (info, bytes) = self.expand_same_as(src, dst);
            computed.push((i, info, bytes));
        }
        let mut group_list: Vec<(NodeId, Vec<u32>)> = groups.into_iter().collect();
        group_list.sort_unstable_by_key(|(node, _)| *node);
        let expanded: Vec<Vec<ComputedEntry>> = group_list
            .par_iter()
            .map(|(dst_node, members)| {
                let table = self.router.table_at(*dst_node);
                members
                    .iter()
                    .map(|&i| {
                        let (src, dst) = keys[i as usize];
                        let s = self.hosts.get(src);
                        let d = self.hosts.get(dst);
                        let fwd_as = table.as_path_from(s.node);
                        let rev_as = self.router.as_path_between(d.node, s.node);
                        match (fwd_as, rev_as) {
                            (Some(fwd_as), Some(rev_as)) => {
                                let (info, bytes) =
                                    self.expand_cross_as(src, dst, &fwd_as, &rev_as);
                                (i, info, bytes)
                            }
                            _ => (i, None, entry_bytes(&None, 0)),
                        }
                    })
                    .collect()
            })
            .collect();
        computed.extend(expanded.into_iter().flatten());

        // Pass 4: publish per shard — one write lock each — and fill
        // the remaining rows.
        let mut insert_by_shard: Vec<Vec<ComputedEntry>> = vec![Vec::new(); CACHE_SHARDS];
        for (i, info, bytes) in computed {
            block.set_row(i, info.as_deref());
            insert_by_shard[PairCache::shard_index(keys[i as usize])].push((i, info, bytes));
        }
        for (sidx, entries) in insert_by_shard.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            self.cache.insert_many(
                sidx,
                entries
                    .into_iter()
                    .map(|(i, info, bytes)| (keys[i as usize], info, bytes)),
                epoch,
            );
        }

        (block, index)
    }

    /// Samples one measurement window — `pings` pings spaced
    /// `interval_secs` apart from `start` — against already-resolved
    /// pair facts, appending replies to `out` (cleared first). This is
    /// the allocation-free inner loop of the batched kernel: no cache
    /// probe, no `Arc` chase, no per-window `Vec`.
    ///
    /// RNG draws replicate [`PingEngine::ping_faulted`] exactly —
    /// same draws, same order, same skips — so a window sampled here
    /// is bit-identical to the scalar path under the same RNG stream.
    /// Engine counters advance by the same totals (batched where the
    /// scalar path bumps per ping).
    #[allow(clippy::too_many_arguments)]
    pub fn sample_window_resolved<R: Rng + ?Sized>(
        &self,
        resolved: Option<(&[Asn], f64, f64)>,
        start: SimTime,
        pings: usize,
        interval_secs: f64,
        faults: &FaultPlan,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        let mut tally = SampleTally::default();
        self.sample_window_resolved_tally(
            resolved,
            start,
            pings,
            interval_secs,
            faults,
            rng,
            out,
            &mut tally,
        );
        self.stats.flush(&tally);
    }

    /// [`PingEngine::sample_window_resolved`] with counter updates
    /// deferred into `tally` instead of hitting the shared atomics —
    /// the chunked form the batched kernel uses, flushing once per
    /// worker chunk.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_window_resolved_tally<R: Rng + ?Sized>(
        &self,
        resolved: Option<(&[Asn], f64, f64)>,
        start: SimTime,
        pings: usize,
        interval_secs: f64,
        faults: &FaultPlan,
        rng: &mut R,
        out: &mut Vec<f64>,
        tally: &mut SampleTally,
    ) {
        out.clear();
        tally.attempts += pings as u64;
        let Some((path, base_ms, mid_lon)) = resolved else {
            tally.unroutable += pings as u64;
            return;
        };
        let have_faults = !faults.is_empty();
        // `path_extra_loss` is time-independent, so hoist it out of the
        // loop; the scalar path only draws its `gen_bool` when the rate
        // is positive, so hoisting changes no RNG stream.
        let extra = if have_faults {
            faults.path_extra_loss(path)
        } else {
            0.0
        };
        for i in 0..pings {
            let t = start.plus_secs(i as f64 * interval_secs);
            if have_faults {
                if faults.path_down(path, t) {
                    continue;
                }
                if extra > 0.0 && rng.gen_bool(extra.min(1.0)) {
                    continue;
                }
            }
            if let Some(rtt) = self.model.sample_rtt(base_ms, t, mid_lon, rng) {
                out.push(rtt);
            }
        }
        tally.replies += out.len() as u64;
        tally.losses += pings as u64 - out.len() as u64;
    }

    /// Samples one window for a pair, resolving it through the cache
    /// first (one lookup per *window*, not per ping — the scalar
    /// path's remaining five lookups were pure overhead).
    #[allow(clippy::too_many_arguments)]
    pub fn sample_window<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        start: SimTime,
        pings: usize,
        interval_secs: f64,
        faults: &FaultPlan,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        let info = self.pair_info(src, dst);
        let resolved = info
            .as_ref()
            .map(|p| (&p.as_path[..], p.base_ms, p.mid_lon));
        self.sample_window_resolved(resolved, start, pings, interval_secs, faults, rng, out);
    }

    /// Samples one window from a [`PairBlock`] row — the innermost
    /// loop of batched round execution.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_window_block<R: Rng + ?Sized>(
        &self,
        block: &PairBlock,
        slot: u32,
        start: SimTime,
        pings: usize,
        interval_secs: f64,
        faults: &FaultPlan,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        let i = slot as usize;
        let resolved = block.paths[i]
            .as_ref()
            .map(|p| (&p[..], block.base_ms[i], block.mid_lon[i]));
        self.sample_window_resolved(resolved, start, pings, interval_secs, faults, rng, out);
    }

    /// [`PingEngine::sample_window_block`] with deferred counters (see
    /// [`PingEngine::sample_window_resolved_tally`]).
    #[allow(clippy::too_many_arguments)]
    pub fn sample_window_block_tally<R: Rng + ?Sized>(
        &self,
        block: &PairBlock,
        slot: u32,
        start: SimTime,
        pings: usize,
        interval_secs: f64,
        faults: &FaultPlan,
        rng: &mut R,
        out: &mut Vec<f64>,
        tally: &mut SampleTally,
    ) {
        let i = slot as usize;
        let resolved = block.paths[i]
            .as_ref()
            .map(|p| (&p[..], block.base_ms[i], block.mid_lon[i]));
        self.sample_window_resolved_tally(
            resolved,
            start,
            pings,
            interval_secs,
            faults,
            rng,
            out,
            tally,
        );
    }

    /// The deterministic base RTT between two hosts, ms (`None` if
    /// unroutable). Useful for tests and calibration; real measurements
    /// go through [`PingEngine::ping`].
    pub fn base_rtt(&self, src: HostId, dst: HostId) -> Option<f64> {
        self.pair_info(src, dst).map(|p| p.base_ms)
    }

    /// AS path between two hosts (`None` if unroutable). Shared, not
    /// cloned: the campaign's fault checks read this on every ping.
    pub fn as_path(&self, src: HostId, dst: HostId) -> Option<Arc<[Asn]>> {
        self.pair_info(src, dst).map(|p| Arc::clone(&p.as_path))
    }

    /// Sends one ping at time `t`; returns the observed RTT in ms, or
    /// `None` on loss / outage / no route. Fault-free — per-campaign
    /// fault plans are applied by [`PingHandle`].
    pub fn ping<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        rng: &mut R,
    ) -> Option<f64> {
        self.ping_faulted(src, dst, t, &FaultPlan::NONE, rng)
    }

    /// [`PingEngine::ping`] under a fault plan the *caller* owns. The
    /// engine itself carries no faults — campaigns sharing one engine
    /// each bring their own plan through their [`PingHandle`].
    pub fn ping_faulted<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        faults: &FaultPlan,
        rng: &mut R,
    ) -> Option<f64> {
        self.stats.attempts.fetch_add(1, Ordering::Relaxed);
        let Some(info) = self.pair_info(src, dst) else {
            self.stats.unroutable.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if !faults.is_empty() {
            if faults.path_down(&info.as_path, t) {
                self.stats.losses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            let extra = faults.path_extra_loss(&info.as_path);
            if extra > 0.0 && rng.gen_bool(extra.min(1.0)) {
                self.stats.losses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        match self.model.sample_rtt(info.base_ms, t, info.mid_lon, rng) {
            Some(rtt) => {
                self.stats.replies.fetch_add(1, Ordering::Relaxed);
                Some(rtt)
            }
            None => {
                self.stats.losses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Sends `n` pings spaced `interval_secs` apart starting at `t` and
    /// returns the replies (lost pings omitted). This is the paper's
    /// "6 pings, 5 minutes apart, per 30-minute window" primitive.
    pub fn ping_series<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        n: usize,
        interval_secs: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        (0..n)
            .filter_map(|i| self.ping(src, dst, t.plus_secs(i as f64 * interval_secs), rng))
            .collect()
    }
}

/// Anything that can measure: the shared [`PingEngine`] itself, or a
/// per-campaign [`PingHandle`] over it. Measurement code (windows, the
/// §2.2 funnel, Periscope) is generic over this, so a solo run and a
/// sweep campaign execute the byte-identical code path.
pub trait Pinger: Sync {
    /// Sends one ping at time `t`.
    fn ping<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        rng: &mut R,
    ) -> Option<f64>;

    /// Runs a traceroute (the Periscope geolocation primitive).
    fn traceroute<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        rng: &mut R,
    ) -> Option<Traceroute>;

    /// Sends `n` pings spaced `interval_secs` apart starting at `t`
    /// and returns the replies (lost pings omitted).
    fn ping_series<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        n: usize,
        interval_secs: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        self.ping_series_into(src, dst, t, n, interval_secs, rng, &mut out);
        out
    }

    /// As [`Pinger::ping_series`], but appends the replies into a
    /// caller-owned buffer (cleared first) — the allocation-free
    /// variant measurement loops feed with a per-thread scratch
    /// buffer. RNG draws are identical to `ping_series`.
    #[allow(clippy::too_many_arguments)]
    fn ping_series_into<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        n: usize,
        interval_secs: f64,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        for i in 0..n {
            if let Some(rtt) = self.ping(src, dst, t.plus_secs(i as f64 * interval_secs), rng) {
                out.push(rtt);
            }
        }
    }
}

impl Pinger for PingEngine {
    fn ping<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        rng: &mut R,
    ) -> Option<f64> {
        PingEngine::ping(self, src, dst, t, rng)
    }

    fn traceroute<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        rng: &mut R,
    ) -> Option<Traceroute> {
        PingEngine::traceroute(self, src, dst, t, rng)
    }
}

/// A campaign's private view of a shared [`PingEngine`]: the
/// campaign's fault plan plus its own ping accounting.
///
/// The engine is co-owned (`Arc`) and never mutated — campaigns of a
/// sweep all hold handles onto one engine, sharing its pair cache and
/// routing tables, while faults and ping counts stay strictly
/// per-campaign. This is why installing a fault plan no longer needs
/// `&mut` access to the (shared) engine: the handle is exclusively
/// owned by its campaign.
pub struct PingHandle {
    engine: Arc<PingEngine>,
    faults: FaultPlan,
    /// Pings this handle has attempted (the campaign's `pings_sent`).
    attempts: AtomicU64,
}

impl PingHandle {
    /// A fault-free handle on a shared engine.
    pub fn new(engine: Arc<PingEngine>) -> Self {
        Self::with_faults(engine, FaultPlan::none())
    }

    /// A handle with a fault plan installed.
    pub fn with_faults(engine: Arc<PingEngine>, faults: FaultPlan) -> Self {
        PingHandle {
            engine,
            faults,
            attempts: AtomicU64::new(0),
        }
    }

    /// Installs a fault plan (replaces any previous plan). `&mut self`
    /// is fine here: the handle belongs to exactly one campaign.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The handle's fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The shared engine under the handle.
    pub fn engine(&self) -> &Arc<PingEngine> {
        &self.engine
    }

    /// Pings attempted through this handle (its campaign's share of
    /// the engine-wide [`PingEngine::stats`] attempts).
    pub fn pings_sent(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// The deterministic base RTT between two hosts (see
    /// [`PingEngine::base_rtt`]).
    pub fn base_rtt(&self, src: HostId, dst: HostId) -> Option<f64> {
        self.engine.base_rtt(src, dst)
    }

    /// AS path between two hosts (see [`PingEngine::as_path`]).
    pub fn as_path(&self, src: HostId, dst: HostId) -> Option<Arc<[Asn]>> {
        self.engine.as_path(src, dst)
    }

    /// Batch-resolves a round's pair set on the shared engine (see
    /// [`PingEngine::resolve_pairs`]). Resolution sends no pings, so
    /// the handle's accounting is untouched.
    pub fn resolve_pairs(&self, pairs: &[(HostId, HostId)]) -> PairBlock {
        self.engine.resolve_pairs(pairs)
    }

    /// Indexed batch resolution (see
    /// [`PingEngine::resolve_pairs_indexed`]).
    pub fn resolve_pairs_indexed(&self, pairs: &[(HostId, HostId)]) -> (PairBlock, Vec<u32>) {
        self.engine.resolve_pairs_indexed(pairs)
    }

    /// Samples one measurement window under this handle's fault plan
    /// (see [`PingEngine::sample_window`]); counts `pings` attempts on
    /// the handle, exactly as `pings` scalar [`Pinger::ping`] calls
    /// would.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_window<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        start: SimTime,
        pings: usize,
        interval_secs: f64,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        self.attempts.fetch_add(pings as u64, Ordering::Relaxed);
        self.engine.sample_window(
            src,
            dst,
            start,
            pings,
            interval_secs,
            &self.faults,
            rng,
            out,
        );
    }

    /// Samples one window from a [`PairBlock`] row under this handle's
    /// fault plan (see [`PingEngine::sample_window_block`]).
    #[allow(clippy::too_many_arguments)]
    pub fn sample_window_block<R: Rng + ?Sized>(
        &self,
        block: &PairBlock,
        slot: u32,
        start: SimTime,
        pings: usize,
        interval_secs: f64,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        self.attempts.fetch_add(pings as u64, Ordering::Relaxed);
        self.engine.sample_window_block(
            block,
            slot,
            start,
            pings,
            interval_secs,
            &self.faults,
            rng,
            out,
        );
    }

    /// [`PingHandle::sample_window_block`] with counter updates
    /// deferred into `tally`; pair with one [`PingHandle::flush_tally`]
    /// per worker chunk. Skipping the flush under-counts both the
    /// handle's and the engine's traffic.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_window_block_tally<R: Rng + ?Sized>(
        &self,
        block: &PairBlock,
        slot: u32,
        start: SimTime,
        pings: usize,
        interval_secs: f64,
        rng: &mut R,
        out: &mut Vec<f64>,
        tally: &mut SampleTally,
    ) {
        self.engine.sample_window_block_tally(
            block,
            slot,
            start,
            pings,
            interval_secs,
            &self.faults,
            rng,
            out,
            tally,
        );
    }

    /// Publishes a deferred tally: the handle's attempt share and the
    /// engine-wide counters, in one `fetch_add` per non-zero field.
    pub fn flush_tally(&self, tally: &SampleTally) {
        if tally.attempts > 0 {
            self.attempts.fetch_add(tally.attempts, Ordering::Relaxed);
        }
        self.engine.stats.flush(tally);
    }
}

impl Pinger for PingHandle {
    fn ping<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        rng: &mut R,
    ) -> Option<f64> {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        self.engine.ping_faulted(src, dst, t, &self.faults, rng)
    }

    fn traceroute<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        rng: &mut R,
    ) -> Option<Traceroute> {
        let tr = self
            .engine
            .traceroute_faulted(src, dst, t, &self.faults, rng);
        if tr.is_some() {
            // A routed traceroute pings the destination exactly once
            // (its last hop) — count it like the engine does.
            self.attempts.fetch_add(1, Ordering::Relaxed);
        }
        tr
    }
}

/// Longitude midpoint that respects the antimeridian (picks the midpoint
/// on the shorter arc).
fn mid_longitude(a: f64, b: f64) -> f64 {
    let diff = (b - a + 540.0).rem_euclid(360.0) - 180.0;
    let mid = a + diff / 2.0;
    (mid + 540.0).rem_euclid(360.0) - 180.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shortcuts_topology::TopologyConfig;

    struct Fixture {
        topo: Arc<Topology>,
        router: Arc<Router>,
    }

    /// Builds a shared topology+router — the Arc ownership the real
    /// engine stack uses.
    fn fixture() -> Fixture {
        let topo = Arc::new(Topology::generate(&TopologyConfig::small(), 77));
        let router = Arc::new(Router::new(Arc::clone(&topo)));
        Fixture { topo, router }
    }

    fn two_hosts(f: &Fixture) -> (PingEngine, HostId, HostId) {
        let mut reg = HostRegistry::new();
        let eyes = f.topo.eyeball_asns();
        let a = reg.add_host_in_as(&f.topo, eyes[0], None).unwrap();
        let b = reg
            .add_host_in_as(&f.topo, eyes[eyes.len() / 2], None)
            .unwrap();
        let engine = PingEngine::new(
            Arc::clone(&f.topo),
            Arc::clone(&f.router),
            Arc::new(reg),
            LatencyModel::default(),
        );
        (engine, a, b)
    }

    #[test]
    fn engine_is_sync_and_shareable() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<PingEngine>();
        assert_sync::<PingHandle>();

        // Concurrent pings through one shared engine must keep the
        // counters consistent.
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        std::thread::scope(|s| {
            for t in 0..4 {
                let engine = &engine;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + t);
                    for i in 0..50 {
                        let _ = engine.ping(a, b, SimTime(f64::from(i)), &mut rng);
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.attempts, 200);
        assert_eq!(stats.replies + stats.losses + stats.unroutable, 200);
    }

    #[test]
    fn pair_cache_shards_are_stable_and_spread() {
        let cache = PairCache::new(None);
        for i in 0..500u32 {
            let key = (HostId(i), HostId(i ^ 0xABC));
            cache.insert(key, None, 0, entry_bytes(&None, 0));
            assert!(
                matches!(cache.get(key, 0), PairLookup::Hit(_)),
                "inserted pair must be found"
            );
        }
        // The shard hash must actually spread pairs; a constant hash
        // would silently restore single-lock contention.
        let used = cache
            .shards
            .iter()
            .filter(|s| !s.state.read().map.is_empty())
            .count();
        assert!(used > CACHE_SHARDS / 2, "only {used} shards used");
    }

    #[test]
    fn budgeted_pair_cache_bounds_each_shard_and_still_answers() {
        // Room for roughly two unroutable entries per shard.
        let per_entry = u64::from(entry_bytes(&None, 0));
        let budget = 2 * per_entry * CACHE_SHARDS as u64;
        let cache = PairCache::new(Some(budget));
        for i in 0..2000u32 {
            cache.insert((HostId(i), HostId(i)), None, 0, entry_bytes(&None, 0));
        }
        assert!(cache.evictions() > 0, "budget never forced an eviction");
        for s in &cache.shards {
            let st = s.state.read();
            assert!(st.bytes <= 2 * per_entry, "shard over budget: {}", st.bytes);
            assert_eq!(st.ring.len(), st.map.len(), "ring out of sync");
        }
        assert!(cache.resident_bytes() <= budget);
        // Evicted keys read as misses (recomputed upstream), resident
        // ones as hits; either way the cache still answers.
        let resident = cache.len();
        assert!((1..=2 * CACHE_SHARDS).contains(&resident), "{resident}");
    }

    #[test]
    fn budgeted_engine_reexpands_evicted_pairs_identically() {
        let f = fixture();
        let mut reg = HostRegistry::new();
        let eyes = f.topo.eyeball_asns();
        let hosts: Vec<HostId> = eyes
            .iter()
            .step_by(eyes.len() / 8)
            .take(8)
            .map(|&asn| reg.add_host_in_as(&f.topo, asn, None).unwrap())
            .collect();
        let reg = Arc::new(reg);
        let unbounded = PingEngine::new(
            Arc::clone(&f.topo),
            Arc::clone(&f.router),
            Arc::clone(&reg),
            LatencyModel::default(),
        );
        // ~1 byte per shard: at most one pair survives per shard, so
        // any shard that sees a second pair must evict — yet every
        // re-expanded answer stays bit-identical to the warm engine's.
        let bounded = PingEngine::with_budget(
            Arc::clone(&f.topo),
            Arc::clone(&f.router),
            reg,
            LatencyModel::default(),
            Some(CACHE_SHARDS as u64),
        );
        for _ in 0..3 {
            for &s in &hosts {
                for &d in &hosts {
                    if s == d {
                        continue;
                    }
                    assert_eq!(bounded.base_rtt(s, d), unbounded.base_rtt(s, d));
                    assert_eq!(
                        bounded.as_path(s, d).map(|p| p.to_vec()),
                        unbounded.as_path(s, d).map(|p| p.to_vec()),
                    );
                }
            }
        }
        let stats = bounded.engine_stats();
        assert!(stats.pair_evictions > 0, "{stats:?}");
        assert!(stats.pair_cache_entries <= CACHE_SHARDS as u64, "{stats:?}");
        assert!(
            stats.pair_resident_bytes < unbounded.engine_stats().pair_resident_bytes,
            "budget did not reduce residency"
        );
        let line = stats.summary();
        for key in [
            "pair_evictions=",
            "pair_bytes=",
            "table_evictions=",
            "tables_bytes=",
            "table_recomputes=",
        ] {
            assert!(line.contains(key), "{line} missing {key}");
        }
    }

    #[test]
    fn engine_stats_track_cache_warmth_and_traffic() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        assert_eq!(engine.engine_stats(), EngineStats::default());

        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..10 {
            let _ = engine.ping(a, b, SimTime(f64::from(i)), &mut rng);
        }
        let stats = engine.engine_stats();
        // First lookup misses and expands the pair; the rest hit.
        assert_eq!(stats.pair_cache_misses, 1);
        assert_eq!(stats.pair_cache_hits, 9);
        assert_eq!(stats.pair_cache_entries, 1);
        assert_eq!(stats.pings_sent, 10);
        assert!(stats.pair_cache_hit_rate() > 0.85);
        // Resolving the pair cached routing tables toward both hosts.
        assert!(stats.router_tables_resident >= 1);
        // The summary line carries every counter.
        let line = stats.summary();
        for key in [
            "pair_hits=9",
            "pair_misses=1",
            "pair_entries=1",
            "pings_sent=10",
        ] {
            assert!(line.contains(key), "{line} missing {key}");
        }
    }

    #[test]
    fn churn_revalidates_untouched_pairs_and_recomputes_crossing_ones() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let path = engine.as_path(a, b).expect("routable fixture pair");
        let before = engine.engine_stats();
        assert_eq!(before.pair_cache_misses, 1);

        // Down a link the pair's path does NOT use: the stale entry
        // must revalidate in place, never re-expand.
        let on_path: std::collections::HashSet<(Asn, Asn)> = path
            .windows(2)
            .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
            .collect();
        let spare = f
            .topo
            .ases()
            .iter()
            .flat_map(|info| {
                let adj = f.topo.adjacency(info.asn);
                adj.peers
                    .iter()
                    .chain(adj.providers.iter())
                    .map(|&o| (info.asn.min(o), info.asn.max(o)))
                    .collect::<Vec<_>>()
            })
            .find(|l| !on_path.contains(l))
            .expect("small topology has links off this path");
        engine.apply_delta(&[TopologyDelta::LinkDown {
            a: spare.0,
            b: spare.1,
        }]);
        let same = engine.as_path(a, b).expect("still routable");
        assert_eq!(same.to_vec(), path.to_vec(), "untouched path must survive");
        let stats = engine.engine_stats();
        assert_eq!(stats.pair_revalidated, 1, "{stats:?}");
        assert_eq!(stats.pair_cache_misses, 1, "revalidation is not a miss");

        // Down a link the path DOES use: the entry must recompute, and
        // the new path must dodge the dirty link.
        let used = (path[0].min(path[1]), path[0].max(path[1]));
        engine.apply_delta(&[TopologyDelta::LinkDown {
            a: used.0,
            b: used.1,
        }]);
        if let Some(new_path) = engine.as_path(a, b) {
            assert!(
                new_path
                    .windows(2)
                    .all(|w| (w[0].min(w[1]), w[0].max(w[1])) != used),
                "recomputed path still crosses the downed link"
            );
        }
        let stats = engine.engine_stats();
        assert_eq!(stats.pair_cache_misses, 2, "{stats:?}");
        assert!(stats.tables_repaired + stats.full_rebuilds > 0, "{stats:?}");
        let line = stats.summary();
        for key in [
            "tables_repaired=",
            "entries_rescanned=",
            "full_rebuilds=",
            "pair_revalidated=1",
        ] {
            assert!(line.contains(key), "{line} missing {key}");
        }
    }

    #[test]
    fn ping_between_eyeballs_returns_plausible_rtt() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let mut rng = StdRng::seed_from_u64(1);
        let mut got = 0;
        for i in 0..20 {
            if let Some(rtt) = engine.ping(a, b, SimTime(i as f64 * 60.0), &mut rng) {
                assert!(rtt > 0.0 && rtt < 2000.0, "rtt {rtt}");
                got += 1;
            }
        }
        assert!(got >= 15, "most pings should succeed, got {got}");
        let stats = engine.stats();
        assert_eq!(stats.attempts, 20);
        assert_eq!(stats.replies + stats.losses + stats.unroutable, 20);
    }

    #[test]
    fn base_rtt_at_least_speed_of_light() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let (ha, hb) = (engine.hosts().get(a).clone(), engine.hosts().get(b).clone());
        let min_rtt = shortcuts_geo::min_rtt_ms(ha.location.distance_km(&hb.location));
        let base = engine.base_rtt(a, b).expect("routable");
        assert!(
            base >= min_rtt,
            "base {base} below physical floor {min_rtt}"
        );
    }

    #[test]
    fn rtt_roughly_symmetric() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let ab = engine.base_rtt(a, b).unwrap();
        let ba = engine.base_rtt(b, a).unwrap();
        // Two-way base construction makes RTT direction-symmetric.
        assert!((ab - ba).abs() < 1e-9, "asymmetry (ab={ab}, ba={ba})");
    }

    #[test]
    fn same_as_hosts_ping_without_routing() {
        let f = fixture();
        let mut reg = HostRegistry::new();
        let asn = f.topo.eyeball_asns()[0];
        let a = reg.add_host_in_as(&f.topo, asn, None).unwrap();
        let b = reg.add_host_in_as(&f.topo, asn, None).unwrap();
        let engine = PingEngine::new(
            Arc::clone(&f.topo),
            Arc::clone(&f.router),
            Arc::new(reg),
            LatencyModel::default(),
        );
        assert_eq!(engine.as_path(a, b).unwrap().to_vec(), vec![asn]);
        assert!(engine.base_rtt(a, b).unwrap() >= 0.0);
    }

    #[test]
    fn outage_kills_pings_during_window() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let mut handle = PingHandle::new(Arc::new(engine));
        let path = handle.as_path(a, b).unwrap();
        let transit = path[1]; // some AS in the middle
        handle.set_faults(FaultPlan::none().with_outage(transit, SimTime(100.0), SimTime(200.0)));
        let mut rng = StdRng::seed_from_u64(2);
        assert!(handle.ping(a, b, SimTime(150.0), &mut rng).is_none());
        // Outside the window pings mostly succeed.
        let ok = (0..10)
            .filter(|i| {
                handle
                    .ping(a, b, SimTime(300.0 + *i as f64), &mut rng)
                    .is_some()
            })
            .count();
        assert!(ok >= 8);
        assert_eq!(handle.pings_sent(), 11);
    }

    #[test]
    fn lossy_as_degrades_success_rate() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let engine = Arc::new(engine);
        let path = engine.as_path(a, b).unwrap();
        let faulty = PingHandle::with_faults(
            Arc::clone(&engine),
            FaultPlan::none().with_lossy_as(path[0], 0.9),
        );
        // A clean handle on the SAME shared engine stays unaffected —
        // fault plans are per-handle, not engine state.
        let clean = PingHandle::new(Arc::clone(&engine));
        let mut rng = StdRng::seed_from_u64(3);
        let ok = (0..100)
            .filter(|i| faulty.ping(a, b, SimTime(*i as f64), &mut rng).is_some())
            .count();
        assert!(ok < 30, "90% lossy AS should kill most pings, got {ok}");
        let ok = (0..100)
            .filter(|i| clean.ping(a, b, SimTime(*i as f64), &mut rng).is_some())
            .count();
        assert!(ok > 70, "clean handle must not see the faults, got {ok}");
        assert_eq!(faulty.pings_sent(), 100);
        assert_eq!(clean.pings_sent(), 100);
    }

    #[test]
    fn ping_series_returns_replies() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let mut rng = StdRng::seed_from_u64(4);
        let replies = engine.ping_series(a, b, SimTime(0.0), 6, 300.0, &mut rng);
        assert!(replies.len() >= 4, "got {}", replies.len());
    }

    #[test]
    fn mid_longitude_handles_antimeridian() {
        assert!((mid_longitude(10.0, 20.0) - 15.0).abs() < 1e-9);
        // Tokyo (139.65) to LA (-118.24): midpoint crosses the Pacific,
        // not Greenwich.
        let m = mid_longitude(139.65, -118.24);
        assert!(
            !(-60.0..=60.0).contains(&m),
            "midpoint {m} crossed wrong way"
        );
    }

    #[test]
    fn unroutable_pair_reports_none() {
        // Build a two-AS topology with no links at all.
        use shortcuts_geo::CountryCode;
        use shortcuts_topology::{AsInfo, AsType, IpAllocator};
        let mut alloc = IpAllocator::default();
        let mut b = Topology::builder();
        for asn in [1u32, 2] {
            b.add_as(AsInfo {
                asn: Asn(asn),
                as_type: AsType::Eyeball,
                home_country: CountryCode::new("US").unwrap(),
                countries: vec![],
                pops: vec![],
                prefixes: vec![alloc.alloc_prefix()],
                user_share: 0.1,
                offers_cloud: false,
            });
        }
        let nyc = b.cities().by_name("NewYork").unwrap().id;
        b.add_pop(Asn(1), nyc);
        b.add_pop(Asn(2), nyc);
        let topo = Arc::new(b.build());
        let router = Arc::new(Router::new(Arc::clone(&topo)));
        let mut reg = HostRegistry::new();
        let a = reg.add_host(&topo, Asn(1), None, HostKind::Probe).unwrap();
        let c = reg.add_host(&topo, Asn(2), None, HostKind::Probe).unwrap();
        let engine = PingEngine::new(topo, router, Arc::new(reg), LatencyModel::default());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(engine.ping(a, c, SimTime(0.0), &mut rng).is_none());
        assert_eq!(engine.stats().unroutable, 1);

        // The batch resolver agrees: the pair gets a row, but an
        // unroutable one, and a sampled window consumes no RNG.
        let block = engine.resolve_pairs(&[(a, c)]);
        let slot = block.slot(a, c).unwrap();
        assert!(!block.is_routable(slot));
        let mut out = vec![1.0; 4];
        engine.sample_window_resolved(
            None,
            SimTime(0.0),
            6,
            300.0,
            &FaultPlan::NONE,
            &mut rng,
            &mut out,
        );
        assert!(out.is_empty(), "unroutable window must clear the buffer");
        assert_eq!(engine.stats().unroutable, 1 + 6);
    }

    /// Registry with `n` hosts spread over distinct eyeball ASes.
    fn many_hosts(f: &Fixture, n: usize) -> (Arc<HostRegistry>, Vec<HostId>) {
        let mut reg = HostRegistry::new();
        let eyes = f.topo.eyeball_asns();
        let hosts: Vec<HostId> = eyes
            .iter()
            .step_by((eyes.len() / n).max(1))
            .take(n)
            .map(|&asn| reg.add_host_in_as(&f.topo, asn, None).unwrap())
            .collect();
        (Arc::new(reg), hosts)
    }

    #[test]
    fn resolve_pairs_matches_scalar_resolution() {
        let f = fixture();
        let (reg, hosts) = many_hosts(&f, 8);
        let batched = PingEngine::new(
            Arc::clone(&f.topo),
            Arc::clone(&f.router),
            Arc::clone(&reg),
            LatencyModel::default(),
        );
        let scalar = PingEngine::new(
            Arc::clone(&f.topo),
            Arc::clone(&f.router),
            reg,
            LatencyModel::default(),
        );
        // Every ordered pair, each listed twice: the resolver must
        // dedupe and still answer for both occurrences.
        let mut pairs = Vec::new();
        for &s in &hosts {
            for &d in &hosts {
                if s != d {
                    pairs.push((s, d));
                    pairs.push((s, d));
                }
            }
        }
        let unique = pairs.len() / 2;
        let block = batched.resolve_pairs(&pairs);
        assert_eq!(block.len(), unique);
        for &(s, d) in &pairs {
            let slot = block.slot(s, d).expect("batched pair must have a row");
            let i = slot as usize;
            match scalar.base_rtt(s, d) {
                Some(base) => {
                    assert!(block.is_routable(slot));
                    assert_eq!(block.base_ms[i], base, "base RTT must match scalar");
                    assert_eq!(
                        block.paths[i].as_ref().unwrap().to_vec(),
                        scalar.as_path(s, d).unwrap().to_vec(),
                    );
                }
                None => assert!(!block.is_routable(slot)),
            }
        }
        // One miss per distinct pair, batch-counted.
        let stats = batched.engine_stats();
        assert_eq!(stats.pair_cache_misses, unique as u64, "{stats:?}");
        assert_eq!(stats.pair_cache_hits, 0, "{stats:?}");
        // A warm re-resolve is pure hits, again one per distinct pair.
        let again = batched.resolve_pairs(&pairs);
        assert_eq!(again.len(), unique);
        let stats = batched.engine_stats();
        assert_eq!(stats.pair_cache_hits, unique as u64, "{stats:?}");
        assert_eq!(stats.pair_cache_misses, unique as u64, "{stats:?}");
    }

    #[test]
    fn sample_window_block_is_bit_identical_to_scalar_pings() {
        let f = fixture();
        let (engine, a, b) = two_hosts(&f);
        let engine = Arc::new(engine);

        // Fault-free: block sampling vs. the scalar series primitive.
        let block = engine.resolve_pairs(&[(a, b)]);
        let slot = block.slot(a, b).unwrap();
        let mut out = Vec::new();
        engine.sample_window_block(
            &block,
            slot,
            SimTime(0.0),
            6,
            300.0,
            &FaultPlan::NONE,
            &mut StdRng::seed_from_u64(42),
            &mut out,
        );
        let series =
            engine.ping_series(a, b, SimTime(0.0), 6, 300.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(
            out, series,
            "batched window must replicate scalar RNG draws"
        );

        // Under a fault plan (outage + extra loss), through handles —
        // including the per-handle attempts accounting.
        let path = engine.as_path(a, b).unwrap();
        let faults = FaultPlan::none().with_lossy_as(path[0], 0.5).with_outage(
            path[0],
            SimTime(300.0),
            SimTime(700.0),
        );
        let scalar_handle = PingHandle::with_faults(Arc::clone(&engine), faults.clone());
        let batched_handle = PingHandle::with_faults(Arc::clone(&engine), faults);
        let mut rng = StdRng::seed_from_u64(7);
        let scalar: Vec<f64> = (0..6)
            .filter_map(|i| {
                scalar_handle.ping(a, b, SimTime(0.0).plus_secs(i as f64 * 300.0), &mut rng)
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        batched_handle.sample_window_block(
            &block,
            slot,
            SimTime(0.0),
            6,
            300.0,
            &mut rng,
            &mut out,
        );
        assert_eq!(out, scalar, "faulted window must replicate scalar draws");
        assert!(out.len() < 6, "the outage must eat mid-window pings");
        assert_eq!(scalar_handle.pings_sent(), batched_handle.pings_sent());
    }

    #[test]
    fn interning_shares_paths_across_mirror_pairs() {
        let f = fixture();
        let (reg, hosts) = many_hosts(&f, 8);
        let engine = PingEngine::new(
            Arc::clone(&f.topo),
            Arc::clone(&f.router),
            reg,
            LatencyModel::default(),
        );
        let mut fwd = Vec::new();
        let mut mirror = Vec::new();
        for i in 0..hosts.len() {
            for j in (i + 1)..hosts.len() {
                fwd.push((hosts[i], hosts[j]));
                mirror.push((hosts[j], hosts[i]));
            }
        }
        let _ = engine.resolve_pairs(&fwd);
        let s1 = engine.engine_stats();
        assert!(s1.paths_interned > 0, "{s1:?}");

        // Every mirror pair's forward path is the forward pair's
        // reverse path (and vice versa) — both already interned — so
        // mirror entries charge exactly the fixed entry cost, zero
        // path bytes. That is the interning win the byte budget sees.
        let block = engine.resolve_pairs(&mirror);
        let s2 = engine.engine_stats();
        assert_eq!(s2.pair_cache_entries, 2 * s1.pair_cache_entries, "{s2:?}");
        assert!(
            s2.path_dedup_hits >= s1.path_dedup_hits + mirror.len() as u64,
            "{s2:?} vs {s1:?}"
        );
        assert_eq!(
            s2.paths_interned, s1.paths_interned,
            "mirror resolution must intern nothing fresh"
        );
        let routable = (0..block.len() as u32)
            .filter(|&k| block.is_routable(k))
            .count() as u64;
        let unroutable = block.len() as u64 - routable;
        assert!(routable > 0, "fixture should route most mirror pairs");
        let dummy = Some(Arc::new(PairInfo {
            base_ms: 0.0,
            as_path: Arc::from([Asn(1)].as_slice()),
            rev_path: Arc::from([Asn(1)].as_slice()),
            mid_lon: 0.0,
        }));
        let fixed_routable = u64::from(entry_bytes(&dummy, 0));
        let fixed_unroutable = u64::from(entry_bytes(&None, 0));
        assert_eq!(
            s2.pair_resident_bytes - s1.pair_resident_bytes,
            routable * fixed_routable + unroutable * fixed_unroutable,
            "mirror entries must be charged no path payload"
        );
    }
}
