//! Traceroute simulation: per-AS-hop RTT samples along the forward
//! path.
//!
//! The paper's geolocation step runs over Periscope, which "currently
//! supports only traceroute probes from LGs; we calculate the RTT as
//! the one yielded on the last hop to the IP" (§2.2). This module gives
//! the simulator an honest traceroute surface: one reply per AS hop at
//! the hop's handoff location, some hops silent (routers that don't
//! answer TTL-exceeded), the last hop being the target itself.
//!
//! The paper's future work (§5 (iii)) also proposes traceroute-based
//! regional analysis — the per-hop geography exposed here is what such
//! an analysis consumes.

use crate::clock::SimTime;
use crate::fault::FaultPlan;
use crate::host::HostId;
use crate::path::expand_path;
use crate::ping::PingEngine;
use rand::Rng;
use shortcuts_geo::GeoPoint;
use shortcuts_topology::Asn;

/// One hop of a traceroute.
#[derive(Debug, Clone)]
pub struct TracerouteHop {
    /// AS owning the responding router.
    pub asn: Asn,
    /// Location of the responding interface (the handoff point the
    /// router-level expansion chose).
    pub location: GeoPoint,
    /// Round-trip time to this hop, ms; `None` if the router stayed
    /// silent (no TTL-exceeded reply).
    pub rtt_ms: Option<f64>,
}

/// A complete traceroute result.
#[derive(Debug, Clone)]
pub struct Traceroute {
    /// Hops in path order; the last entry is the destination when
    /// `reached` is true.
    pub hops: Vec<TracerouteHop>,
    /// Whether the destination replied.
    pub reached: bool,
}

impl Traceroute {
    /// RTT of the last hop (the §2.2 Periscope metric), if the
    /// destination replied.
    pub fn last_hop_rtt(&self) -> Option<f64> {
        if !self.reached {
            return None;
        }
        self.hops.last().and_then(|h| h.rtt_ms)
    }

    /// Number of hops that replied.
    pub fn responsive_hops(&self) -> usize {
        self.hops.iter().filter(|h| h.rtt_ms.is_some()).count()
    }
}

/// Probability an intermediate router ignores TTL-exceeded probing.
const SILENT_HOP_PROB: f64 = 0.15;

impl PingEngine {
    /// Runs a traceroute from `src` to `dst` at time `t`.
    ///
    /// Returns `None` when no route exists. Hop RTTs are built from the
    /// same deterministic geometry as pings (cumulative forward-path
    /// propagation, charged both ways, plus per-hop processing) with
    /// fresh jitter per hop; the final hop samples the real ping RTT so
    /// `last_hop_rtt` agrees statistically with [`PingEngine::ping`].
    pub fn traceroute<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        rng: &mut R,
    ) -> Option<Traceroute> {
        self.traceroute_faulted(src, dst, t, &FaultPlan::NONE, rng)
    }

    /// [`PingEngine::traceroute`] under a caller-owned fault plan (the
    /// per-campaign plan a [`crate::ping::PingHandle`] carries); the
    /// destination's reply is a real ping under those faults.
    pub fn traceroute_faulted<R: Rng + ?Sized>(
        &self,
        src: HostId,
        dst: HostId,
        t: SimTime,
        faults: &FaultPlan,
        rng: &mut R,
    ) -> Option<Traceroute> {
        let s = self.hosts().get(src);
        let d = self.hosts().get(dst);
        let as_path = self.as_path(src, dst)?;
        let model = self.model();

        // Forward expansion with handoff points for hop attribution.
        let fwd = expand_path(
            self.topology(),
            &as_path,
            s.location,
            d.location,
            &model.expand,
        );
        let handoffs = fwd.handoff_points(s.location, d.location);

        let mut hops = Vec::with_capacity(as_path.len());
        let mut cum_km = 0.0;
        let mut prev = s.location;
        for (i, (&asn, &loc)) in as_path.iter().zip(handoffs.iter()).enumerate() {
            cum_km += prev.distance_km(&loc);
            prev = loc;
            let is_last = i == as_path.len() - 1;
            let rtt_ms = if is_last {
                // The destination's reply is a real ping.
                self.ping_faulted(src, dst, t, faults, rng)
            } else if rng.gen_bool(SILENT_HOP_PROB) {
                None
            } else {
                // Cumulative propagation both ways + processing so far,
                // plus the same jitter family pings use.
                let base = 2.0 * cum_km * model.circuity / shortcuts_geo::FIBER_KM_PER_MS
                    + f64::from(model.expand.hops_per_as) * (i as f64 + 1.0) * model.per_hop_ms
                    + s.access_ms;
                model.sample_rtt(base, t, s.location.lon(), rng)
            };
            hops.push(TracerouteHop {
                asn,
                location: loc,
                rtt_ms,
            });
        }
        let reached = hops.last().is_some_and(|h| h.rtt_ms.is_some());
        Some(Traceroute { hops, reached })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostRegistry;
    use crate::latency::LatencyModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shortcuts_topology::routing::Router;
    use shortcuts_topology::{Topology, TopologyConfig};

    fn setup() -> (PingEngine, HostId, HostId) {
        let topo = std::sync::Arc::new(Topology::generate(&TopologyConfig::small(), 88));
        let router = std::sync::Arc::new(Router::new(std::sync::Arc::clone(&topo)));
        let mut reg = HostRegistry::new();
        let eyes = topo.eyeball_asns();
        let a = reg.add_host_in_as(&topo, eyes[0], None).unwrap();
        let b = reg
            .add_host_in_as(&topo, eyes[eyes.len() / 2], None)
            .unwrap();
        let engine = PingEngine::new(
            topo,
            router,
            std::sync::Arc::new(reg),
            LatencyModel::default(),
        );
        (engine, a, b)
    }

    #[test]
    fn traceroute_follows_the_as_path() {
        let (engine, a, b) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let tr = engine.traceroute(a, b, SimTime(0.0), &mut rng).unwrap();
        let as_path = engine.as_path(a, b).unwrap();
        assert_eq!(tr.hops.len(), as_path.len());
        for (hop, asn) in tr.hops.iter().zip(as_path.iter()) {
            assert_eq!(hop.asn, *asn);
        }
    }

    #[test]
    fn hop_rtts_are_monotone_in_expectation() {
        let (engine, a, b) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        // Average over repetitions to wash out jitter.
        let n = 40;
        let len = engine.as_path(a, b).unwrap().len();
        let mut sums = vec![0.0f64; len];
        let mut counts = vec![0u32; len];
        for i in 0..n {
            let tr = engine
                .traceroute(a, b, SimTime(f64::from(i) * 60.0), &mut rng)
                .unwrap();
            for (k, hop) in tr.hops.iter().enumerate() {
                if let Some(r) = hop.rtt_ms {
                    sums[k] += r;
                    counts[k] += 1;
                }
            }
        }
        let means: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| s / f64::from(c.max(1)))
            .collect();
        // First hop well below last hop.
        assert!(means[0] < *means.last().unwrap());
    }

    #[test]
    fn last_hop_rtt_matches_ping_scale() {
        let (engine, a, b) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let base = engine.base_rtt(a, b).unwrap();
        for i in 0..10 {
            let tr = engine
                .traceroute(a, b, SimTime(f64::from(i)), &mut rng)
                .unwrap();
            if let Some(last) = tr.last_hop_rtt() {
                assert!(last >= base - 1e-9);
                assert!(last < base + 600.0);
            }
        }
    }

    #[test]
    fn some_hops_are_silent() {
        let (engine, a, b) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut silent = 0;
        let mut total = 0;
        for i in 0..50 {
            let tr = engine
                .traceroute(a, b, SimTime(f64::from(i)), &mut rng)
                .unwrap();
            total += tr.hops.len();
            silent += tr.hops.len() - tr.responsive_hops();
        }
        assert!(silent > 0, "expected silent hops in {total}");
        assert!(silent * 2 < total, "too many silent hops: {silent}/{total}");
    }

    #[test]
    fn unroutable_traceroute_is_none() {
        use shortcuts_geo::CountryCode;
        use shortcuts_topology::{AsInfo, AsType, IpAllocator};
        let mut alloc = IpAllocator::default();
        let mut b = Topology::builder();
        for asn in [1u32, 2] {
            b.add_as(AsInfo {
                asn: Asn(asn),
                as_type: AsType::Eyeball,
                home_country: CountryCode::new("US").unwrap(),
                countries: vec![],
                pops: vec![],
                prefixes: vec![alloc.alloc_prefix()],
                user_share: 0.1,
                offers_cloud: false,
            });
        }
        let nyc = b.cities().by_name("NewYork").unwrap().id;
        b.add_pop(Asn(1), nyc);
        b.add_pop(Asn(2), nyc);
        let topo = std::sync::Arc::new(b.build());
        let router = std::sync::Arc::new(Router::new(std::sync::Arc::clone(&topo)));
        let mut reg = HostRegistry::new();
        let a = reg.add_host_in_as(&topo, Asn(1), None).unwrap();
        let c = reg.add_host_in_as(&topo, Asn(2), None).unwrap();
        let engine = PingEngine::new(
            topo,
            router,
            std::sync::Arc::new(reg),
            LatencyModel::default(),
        );
        let mut rng = StdRng::seed_from_u64(5);
        assert!(engine.traceroute(a, c, SimTime(0.0), &mut rng).is_none());
    }
}
