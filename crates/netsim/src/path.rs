//! Router-level path expansion.
//!
//! The routing layer produces an **AS path**; RTT needs **kilometers**.
//! This module walks the AS path and decides, for every AS-to-AS handoff,
//! *where on the planet* the handoff happens:
//!
//! - If the two ASes share PoP cities, the handoff happens in one of
//!   them, chosen **hot-potato style**: mostly "get it off my network as
//!   close to where it entered as possible", with a mild pull toward the
//!   destination (`dst_weight`) so paths don't ping-pong pathologically.
//! - If they share no city (a long-haul private interconnect), the pair
//!   of PoPs minimizing the same objective is used and the inter-city
//!   span is charged to the path.
//!
//! This is where **path inflation becomes kilometers**: a valley-free
//! detour through a transit AS whose nearest PoP is far off the geodesic
//! shows up as real distance, and hence real milliseconds. The expansion
//! also counts router hops (two per AS plus one per long-haul segment)
//! for the per-hop processing term of the latency model.

use shortcuts_geo::GeoPoint;
use shortcuts_topology::{Asn, Topology};

/// A geographic segment of the expanded path.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Segment start.
    pub from: GeoPoint,
    /// Segment end.
    pub to: GeoPoint,
    /// Great-circle length in km.
    pub km: f64,
}

/// The expanded router-level path.
#[derive(Debug, Clone)]
pub struct RouterPath {
    /// Geographic segments in travel order.
    pub segments: Vec<Segment>,
    /// Approximate number of router hops (for processing delay).
    pub router_hops: u32,
    /// The AS path this expansion came from.
    pub as_path: Vec<Asn>,
    /// Location after each inter-AS handoff, in path order (one entry
    /// per AS-path window). Used by traceroute hop attribution.
    pub handoffs: Vec<GeoPoint>,
}

impl RouterPath {
    /// Total great-circle kilometers along the path.
    pub fn total_km(&self) -> f64 {
        self.segments.iter().map(|s| s.km).sum()
    }

    /// One location per AS of the path: where traffic sits when leaving
    /// each AS (the handoff point), with the final AS attributed to the
    /// destination itself.
    pub fn handoff_points(&self, _src: GeoPoint, dst: GeoPoint) -> Vec<GeoPoint> {
        let mut v = self.handoffs.clone();
        v.push(dst);
        v
    }

    /// Geographic inflation versus the direct great circle between the
    /// path's first and last points. `>= 1.0` whenever the endpoints are
    /// distinct; `1.0` for an empty or degenerate path.
    pub fn inflation(&self, src: &GeoPoint, dst: &GeoPoint) -> f64 {
        let direct = src.distance_km(dst);
        if direct < 1e-9 {
            return 1.0;
        }
        (self.total_km() / direct).max(1.0)
    }
}

/// Tuning knobs for the expansion.
#[derive(Debug, Clone, Copy)]
pub struct ExpandConfig {
    /// Weight of "pull toward destination" in handoff selection:
    /// `cost(city) = dist(current, city) + dst_weight * dist(city, dst)`.
    /// `0.0` is pure hot-potato; large values approximate cold-potato.
    pub dst_weight: f64,
    /// Router hops charged per AS traversed.
    pub hops_per_as: u32,
    /// Extra router hops charged per long-haul (no-common-city) handoff.
    pub hops_per_longhaul: u32,
}

impl Default for ExpandConfig {
    fn default() -> Self {
        ExpandConfig {
            dst_weight: 0.35,
            hops_per_as: 3,
            hops_per_longhaul: 2,
        }
    }
}

fn push_segment(segments: &mut Vec<Segment>, from: GeoPoint, to: GeoPoint) {
    let km = from.distance_km(&to);
    if km > 1e-9 {
        segments.push(Segment { from, to, km });
    }
}

/// Expands an AS path into a geographic router path.
///
/// `src_loc`/`dst_loc` are the physical endpoints (probe and target
/// host). The AS path must be non-empty; a single-AS path produces the
/// direct intra-AS segment.
pub fn expand_path(
    topo: &Topology,
    as_path: &[Asn],
    src_loc: GeoPoint,
    dst_loc: GeoPoint,
    cfg: &ExpandConfig,
) -> RouterPath {
    assert!(!as_path.is_empty(), "empty AS path");
    let mut segments = Vec::new();
    let mut handoffs = Vec::with_capacity(as_path.len().saturating_sub(1));
    let mut current = src_loc;
    let mut router_hops = cfg.hops_per_as * as_path.len() as u32;

    for w in as_path.windows(2) {
        let (a, b) = (w[0], w[1]);
        let common = topo.common_pop_cities(a, b);
        if !common.is_empty() {
            // Handoff in the best common city.
            let best = common
                .iter()
                .map(|&c| topo.cities.get(c).location)
                .min_by(|x, y| {
                    let cx = current.distance_km(x) + cfg.dst_weight * x.distance_km(&dst_loc);
                    let cy = current.distance_km(y) + cfg.dst_weight * y.distance_km(&dst_loc);
                    cx.partial_cmp(&cy).expect("finite costs")
                })
                .expect("non-empty common cities");
            push_segment(&mut segments, current, best);
            current = best;
            handoffs.push(current);
        } else {
            // Long-haul interconnect: best (a_pop, b_pop) pair.
            let a_cities = topo.pop_cities(a);
            let b_cities = topo.pop_cities(b);
            if a_cities.is_empty() || b_cities.is_empty() {
                // Degenerate topology (AS without PoPs): charge direct.
                handoffs.push(current);
                continue;
            }
            let mut best: Option<(GeoPoint, GeoPoint, f64)> = None;
            for &ca in a_cities {
                let pa = topo.cities.get(ca).location;
                let leg1 = current.distance_km(&pa);
                for &cb in b_cities {
                    let pb = topo.cities.get(cb).location;
                    let cost =
                        leg1 + pa.distance_km(&pb) + cfg.dst_weight * pb.distance_km(&dst_loc);
                    if best.is_none_or(|(_, _, c)| cost < c) {
                        best = Some((pa, pb, cost));
                    }
                }
            }
            let (pa, pb, _) = best.expect("non-empty PoP sets");
            push_segment(&mut segments, current, pa);
            push_segment(&mut segments, pa, pb);
            current = pb;
            handoffs.push(current);
            router_hops += cfg.hops_per_longhaul;
        }
    }

    push_segment(&mut segments, current, dst_loc);
    RouterPath {
        segments,
        router_hops,
        as_path: as_path.to_vec(),
        handoffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_geo::CountryCode;
    use shortcuts_topology::{AsInfo, AsType, Topology};

    /// Hand-built three-AS line: src AS (London+Paris), transit
    /// (Paris+NewYork), dst AS (NewYork).
    fn line_topology() -> Topology {
        let mut b = Topology::builder();
        let mk = |asn: u32, t: AsType| AsInfo {
            asn: Asn(asn),
            as_type: t,
            home_country: CountryCode::new("US").unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        };
        b.add_as(mk(1, AsType::Eyeball));
        b.add_as(mk(2, AsType::Tier1));
        b.add_as(mk(3, AsType::Eyeball));
        let lon = b.cities().by_name("London").unwrap().id;
        let par = b.cities().by_name("Paris").unwrap().id;
        let nyc = b.cities().by_name("NewYork").unwrap().id;
        b.add_pop(Asn(1), lon);
        b.add_pop(Asn(1), par);
        b.add_pop(Asn(2), par);
        b.add_pop(Asn(2), nyc);
        b.add_pop(Asn(3), nyc);
        b.add_transit(Asn(1), Asn(2));
        b.add_transit(Asn(3), Asn(2));
        b.build()
    }

    fn loc(topo: &Topology, name: &str) -> GeoPoint {
        topo.cities.by_name(name).unwrap().location
    }

    #[test]
    fn expands_through_common_cities() {
        let topo = line_topology();
        let src = loc(&topo, "London");
        let dst = loc(&topo, "NewYork");
        let path = expand_path(
            &topo,
            &[Asn(1), Asn(2), Asn(3)],
            src,
            dst,
            &ExpandConfig::default(),
        );
        // Expected: London -> Paris (handoff 1->2), Paris -> NYC
        // (handoff 2->3 in NYC), then zero-length to dst.
        let total = path.total_km();
        let direct = src.distance_km(&dst);
        assert!(total > direct, "detour through Paris inflates distance");
        // Inflation should be modest (Paris is near the London-NYC line
        // in AS-hop terms but east of it geographically).
        assert!(
            path.inflation(&src, &dst) < 1.5,
            "{}",
            path.inflation(&src, &dst)
        );
        assert_eq!(path.as_path, vec![Asn(1), Asn(2), Asn(3)]);
        assert_eq!(path.router_hops, 9);
    }

    #[test]
    fn single_as_path_is_direct() {
        let topo = line_topology();
        let src = loc(&topo, "London");
        let dst = loc(&topo, "Paris");
        let path = expand_path(&topo, &[Asn(1)], src, dst, &ExpandConfig::default());
        assert_eq!(path.segments.len(), 1);
        assert!((path.total_km() - src.distance_km(&dst)).abs() < 1e-9);
    }

    #[test]
    fn same_location_yields_zero_km() {
        let topo = line_topology();
        let p = loc(&topo, "Paris");
        let path = expand_path(&topo, &[Asn(1)], p, p, &ExpandConfig::default());
        assert_eq!(path.segments.len(), 0);
        assert_eq!(path.total_km(), 0.0);
        assert_eq!(path.inflation(&p, &p), 1.0);
    }

    #[test]
    fn longhaul_handoff_when_no_common_city() {
        // Two ASes with no shared city: AS1 in London, AS2 in Tokyo.
        let mut b = Topology::builder();
        let mk = |asn: u32| AsInfo {
            asn: Asn(asn),
            as_type: AsType::Tier2,
            home_country: CountryCode::new("GB").unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        };
        b.add_as(mk(1));
        b.add_as(mk(2));
        let lon = b.cities().by_name("London").unwrap().id;
        let tok = b.cities().by_name("Tokyo").unwrap().id;
        b.add_pop(Asn(1), lon);
        b.add_pop(Asn(2), tok);
        b.add_transit(Asn(1), Asn(2));
        let topo = b.build();

        let src = loc(&topo, "London");
        let dst = loc(&topo, "Tokyo");
        let cfg = ExpandConfig::default();
        let path = expand_path(&topo, &[Asn(1), Asn(2)], src, dst, &cfg);
        assert!((path.total_km() - src.distance_km(&dst)).abs() < 1.0);
        // Long-haul surcharge applied.
        assert_eq!(
            path.router_hops,
            cfg.hops_per_as * 2 + cfg.hops_per_longhaul
        );
    }

    #[test]
    fn hot_potato_prefers_near_handoff() {
        // AS1 (London + NYC PoPs), AS2 (London + NYC PoPs). Pinging from
        // London to a destination in London should hand off in London,
        // not NYC.
        let mut b = Topology::builder();
        let mk = |asn: u32| AsInfo {
            asn: Asn(asn),
            as_type: AsType::Tier2,
            home_country: CountryCode::new("GB").unwrap(),
            countries: vec![],
            pops: vec![],
            prefixes: vec![],
            user_share: 0.0,
            offers_cloud: false,
        };
        b.add_as(mk(1));
        b.add_as(mk(2));
        let lon = b.cities().by_name("London").unwrap().id;
        let nyc = b.cities().by_name("NewYork").unwrap().id;
        for asn in [1u32, 2] {
            b.add_pop(Asn(asn), lon);
            b.add_pop(Asn(asn), nyc);
        }
        b.add_peering(Asn(1), Asn(2));
        let topo = b.build();
        let src = loc(&topo, "London");
        let path = expand_path(&topo, &[Asn(1), Asn(2)], src, src, &ExpandConfig::default());
        assert!(path.total_km() < 1.0, "handoff should stay in London");
    }

    #[test]
    fn inflation_at_least_one() {
        let topo = line_topology();
        let src = loc(&topo, "London");
        let dst = loc(&topo, "NewYork");
        let path = expand_path(
            &topo,
            &[Asn(1), Asn(2), Asn(3)],
            src,
            dst,
            &ExpandConfig::default(),
        );
        assert!(path.inflation(&src, &dst) >= 1.0);
    }

    #[test]
    #[should_panic(expected = "empty AS path")]
    fn empty_path_panics() {
        let topo = line_topology();
        let p = loc(&topo, "Paris");
        expand_path(&topo, &[], p, p, &ExpandConfig::default());
    }
}
