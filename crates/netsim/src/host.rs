//! Hosts: pingable IP endpoints with a location and an owning AS.
//!
//! Everything the campaign pings — RIPE Atlas probes, PlanetLab nodes,
//! colo router interfaces — is a [`Host`]. The registry allocates each
//! host an address from its AS's prefix space and resolves IPs back to
//! hosts, which is what the ping engine operates on.

use shortcuts_geo::{CityId, GeoPoint};
use shortcuts_topology::{Asn, NodeId, Topology};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Dense host identifier (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// What kind of equipment the host is; purely descriptive, but useful
/// in reports and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostKind {
    /// An end-host measurement probe (RIPE Atlas style).
    Probe,
    /// A dedicated measurement server (PlanetLab style).
    Server,
    /// A router/server interface inside a colocation facility.
    ColoInterface,
    /// A Looking Glass vantage point.
    LookingGlass,
}

/// A pingable endpoint.
#[derive(Debug, Clone)]
pub struct Host {
    /// Registry id.
    pub id: HostId,
    /// The host's IPv4 address (unique within the registry).
    pub ip: Ipv4Addr,
    /// AS the address belongs to.
    pub asn: Asn,
    /// Dense node id of that AS in the topology the host was
    /// registered against. Carrying it here lets the ping engine hand
    /// routing-table lookups a [`NodeId`] directly instead of hashing
    /// the ASN on every cold pair.
    pub node: NodeId,
    /// City the host is physically in.
    pub city: CityId,
    /// Physical location (city center).
    pub location: GeoPoint,
    /// Equipment kind.
    pub kind: HostKind,
    /// Last-mile access delay added to every RTT involving this host
    /// (round trip, ms). Home-connection probes carry several ms of
    /// DSL/cable access latency; datacenter interfaces carry near zero.
    /// Relaying *through* a host pays this twice (once per overlay leg),
    /// which is precisely why end-host relays underperform in the paper.
    pub access_ms: f64,
}

/// Error from host registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// The AS is not in the topology.
    UnknownAs(Asn),
    /// The AS has no PoP (no place to put a host).
    NoPops(Asn),
    /// The requested city has no PoP of this AS.
    NoPopInCity(Asn, CityId),
    /// The AS's prefixes are exhausted (registry bug at sim scale).
    AddressSpaceExhausted(Asn),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::UnknownAs(a) => write!(f, "unknown {a}"),
            HostError::NoPops(a) => write!(f, "{a} has no PoPs"),
            HostError::NoPopInCity(a, c) => write!(f, "{a} has no PoP in city {c:?}"),
            HostError::AddressSpaceExhausted(a) => write!(f, "{a} address space exhausted"),
        }
    }
}

impl std::error::Error for HostError {}

/// Registry of all hosts in the simulation.
#[derive(Debug, Default)]
pub struct HostRegistry {
    hosts: Vec<Host>,
    by_ip: HashMap<Ipv4Addr, HostId>,
    /// Next free host index per AS (indexes into the AS's prefixes).
    next_addr: HashMap<Asn, u64>,
}

impl HostRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Looks up a host by id.
    pub fn get(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// Resolves an IP to its host.
    pub fn by_ip(&self, ip: Ipv4Addr) -> Option<&Host> {
        self.by_ip.get(&ip).map(|&id| self.get(id))
    }

    /// Iterates over all hosts.
    pub fn iter(&self) -> impl Iterator<Item = &Host> {
        self.hosts.iter()
    }

    /// Registers a host for `asn` in a specific city (must be a PoP city
    /// of the AS) or, if `city` is `None`, at the AS's first PoP.
    ///
    /// `kind` defaults to [`HostKind::Probe`]; use
    /// [`HostRegistry::add_host`] for full control.
    pub fn add_host_in_as(
        &mut self,
        topo: &Topology,
        asn: Asn,
        city: Option<CityId>,
    ) -> Result<HostId, HostError> {
        self.add_host(topo, asn, city, HostKind::Probe)
    }

    /// Registers a host with an explicit kind. The address is carved out
    /// of the AS's prefixes; skipping `.0` network addresses keeps the
    /// addresses plausible.
    pub fn add_host(
        &mut self,
        topo: &Topology,
        asn: Asn,
        city: Option<CityId>,
        kind: HostKind,
    ) -> Result<HostId, HostError> {
        self.add_host_with_access(topo, asn, city, kind, 0.0)
    }

    /// Registers a host with an explicit last-mile access delay
    /// (round-trip ms added to every ping touching this host).
    pub fn add_host_with_access(
        &mut self,
        topo: &Topology,
        asn: Asn,
        city: Option<CityId>,
        kind: HostKind,
        access_ms: f64,
    ) -> Result<HostId, HostError> {
        let info = topo.as_info(asn).ok_or(HostError::UnknownAs(asn))?;
        let city = match city {
            Some(c) => {
                if !topo.pop_cities(asn).contains(&c) {
                    return Err(HostError::NoPopInCity(asn, c));
                }
                c
            }
            None => {
                let first = info.pops.first().ok_or(HostError::NoPops(asn))?;
                topo.pop(*first).city
            }
        };
        // Allocate the next address across the AS's prefixes.
        let counter = self.next_addr.entry(asn).or_insert(1); // skip .0
        let mut offset = *counter;
        let mut ip = None;
        for p in &info.prefixes {
            if offset < p.size() {
                ip = p.nth(offset);
                break;
            }
            offset -= p.size();
        }
        let ip = ip.ok_or(HostError::AddressSpaceExhausted(asn))?;
        *counter += 1;

        let id = HostId(self.hosts.len() as u32);
        let location = topo.cities.get(city).location;
        let node = topo
            .node_index()
            .node(asn)
            .expect("validated AS has a dense node id");
        self.hosts.push(Host {
            id,
            ip,
            asn,
            node,
            city,
            location,
            kind,
            access_ms,
        });
        self.by_ip.insert(ip, id);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shortcuts_topology::TopologyConfig;

    fn small_topo() -> Topology {
        Topology::generate(&TopologyConfig::small(), 21)
    }

    #[test]
    fn add_host_allocates_in_as_prefix() {
        let topo = small_topo();
        let mut reg = HostRegistry::new();
        let asn = topo.eyeball_asns()[0];
        let id = reg.add_host_in_as(&topo, asn, None).unwrap();
        let host = reg.get(id);
        assert_eq!(host.asn, asn);
        assert_eq!(Some(host.node), topo.node_index().node(asn));
        let info = topo.expect_as(asn);
        assert!(
            info.prefixes.iter().any(|p| p.contains(host.ip)),
            "host IP {} outside AS prefixes",
            host.ip
        );
        assert_eq!(reg.by_ip(host.ip).unwrap().id, id);
    }

    #[test]
    fn hosts_get_distinct_ips() {
        let topo = small_topo();
        let mut reg = HostRegistry::new();
        let asn = topo.eyeball_asns()[0];
        let mut ips = std::collections::HashSet::new();
        for _ in 0..50 {
            let id = reg.add_host_in_as(&topo, asn, None).unwrap();
            assert!(ips.insert(reg.get(id).ip));
        }
        assert_eq!(reg.len(), 50);
    }

    #[test]
    fn rejects_unknown_as_and_bad_city() {
        let topo = small_topo();
        let mut reg = HostRegistry::new();
        assert_eq!(
            reg.add_host_in_as(&topo, Asn(999_999), None),
            Err(HostError::UnknownAs(Asn(999_999)))
        );
        let asn = topo.eyeball_asns()[0];
        // Find a city the AS is definitely not in.
        let bad_city = topo
            .cities
            .iter()
            .map(|c| c.id)
            .find(|c| !topo.pop_cities(asn).contains(c))
            .expect("some city without this AS");
        assert_eq!(
            reg.add_host_in_as(&topo, asn, Some(bad_city)),
            Err(HostError::NoPopInCity(asn, bad_city))
        );
    }

    #[test]
    fn host_in_specific_city() {
        let topo = small_topo();
        let mut reg = HostRegistry::new();
        let asn = topo.eyeball_asns()[0];
        let city = *topo.pop_cities(asn).iter().next().unwrap();
        let id = reg
            .add_host(&topo, asn, Some(city), HostKind::ColoInterface)
            .unwrap();
        let h = reg.get(id);
        assert_eq!(h.city, city);
        assert_eq!(h.kind, HostKind::ColoInterface);
        assert_eq!(h.location.lat(), topo.cities.get(city).location.lat());
    }

    #[test]
    fn ip_skips_network_address() {
        let topo = small_topo();
        let mut reg = HostRegistry::new();
        let asn = topo.eyeball_asns()[0];
        let id = reg.add_host_in_as(&topo, asn, None).unwrap();
        let info = topo.expect_as(asn);
        assert_ne!(reg.get(id).ip, info.prefixes[0].base());
    }
}
