//! Deterministic fast hashing for small fixed-width keys.
//!
//! The pair cache and the batched kernel hash `(HostId, HostId)` keys
//! on every probe, dedupe and slot lookup — millions of times per
//! campaign. `std`'s default SipHash is DoS-resistant but ~an order of
//! magnitude slower than needed for 8-byte keys that never come from
//! an attacker (host ids are dense indices the world builder assigns).
//! [`FastHasher`] is the usual multiply-rotate scheme (as in rustc's
//! FxHash): one rotate + xor + multiply per written word.
//!
//! Unlike `RandomState`, this hasher is **deterministic across runs**,
//! which the engine does not rely on for results (map iteration order
//! is never observable in outputs — eviction walks an explicit clock
//! ring) but which keeps any future diagnostic that *does* iterate a
//! map stable from run to run.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for integer-shaped keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

/// The FxHash multiplier (a prime close to the golden ratio in 64
/// bits, chosen upstream for its bit-mixing behavior under `wrapping_mul`).
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FastHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by trusted fixed-width keys.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreads() {
        let mut map: FastMap<(u32, u32), u32> = FastMap::default();
        for i in 0..1000u32 {
            map.insert((i, i ^ 7), i);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(map.get(&(i, i ^ 7)), Some(&i));
        }
        // Same key, same hash, across hasher instances.
        use std::hash::BuildHasher;
        let build = FastBuild::default();
        let hash_of = |k: (u32, u32)| build.hash_one(k);
        assert_eq!(hash_of((3, 9)), hash_of((3, 9)));
        assert_ne!(hash_of((3, 9)), hash_of((9, 3)));
    }
}
