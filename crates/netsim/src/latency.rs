//! The RTT model: kilometers and hops in, milliseconds out.
//!
//! An observed ping RTT is modeled as
//!
//! ```text
//! rtt = base * (1 + diurnal(t)) + jitter [+ spike]
//! base = 2 * km * circuity / fiber_speed  +  router_hops * per_hop_ms
//! ```
//!
//! - `circuity` accounts for fiber not following great circles (typical
//!   measured values are 1.2–1.5; default 1.25).
//! - `per_hop_ms` charges router forwarding/queueing per hop, round trip.
//! - `diurnal(t)` is a smooth load curve peaking at ~20:00 local time of
//!   the path midpoint.
//! - `jitter` is lognormal (small median, long tail).
//! - `spike` is a rare, large addition (tens to hundreds of ms) modeling
//!   the heavy outliers that forced the paper to use medians (§2.5,
//!   footnote 4).

use crate::clock::SimTime;
use crate::path::{ExpandConfig, RouterPath};
use rand::Rng;
use shortcuts_geo::FIBER_KM_PER_MS;

/// All knobs of the latency model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Fiber-route circuity multiplier over great-circle distance.
    pub circuity: f64,
    /// Round-trip processing/queueing per router hop, ms.
    pub per_hop_ms: f64,
    /// Median of the additive lognormal jitter, ms.
    pub jitter_median_ms: f64,
    /// Sigma (log-space) of the jitter distribution.
    pub jitter_sigma: f64,
    /// Probability that a ping hits a heavy spike.
    pub spike_prob: f64,
    /// Range of spike magnitudes, ms.
    pub spike_range_ms: (f64, f64),
    /// Relative amplitude of the diurnal load effect on base RTT.
    pub diurnal_amplitude: f64,
    /// Baseline per-ping loss probability.
    pub loss_prob: f64,
    /// Router-level expansion configuration.
    pub expand: ExpandConfig,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            circuity: 1.25,
            per_hop_ms: 0.1,
            jitter_median_ms: 0.2,
            jitter_sigma: 0.8,
            spike_prob: 0.012,
            spike_range_ms: (30.0, 400.0),
            diurnal_amplitude: 0.06,
            loss_prob: 0.01,
            expand: ExpandConfig::default(),
        }
    }
}

impl LatencyModel {
    /// Deterministic base RTT of an expanded path, in ms, assuming the
    /// reply retraces the same route.
    #[inline]
    pub fn base_rtt_ms(&self, path: &RouterPath) -> f64 {
        let prop_one_way = path.total_km() * self.circuity / FIBER_KM_PER_MS;
        2.0 * prop_one_way + f64::from(path.router_hops) * self.per_hop_ms
    }

    /// Deterministic base RTT when the forward and return routes differ
    /// (the common case under policy routing): one-way propagation along
    /// each direction's expanded path, plus the per-hop charge averaged
    /// over the two directions. Symmetric by construction:
    /// `base_rtt_two_way(f, r) == base_rtt_two_way(r, f)`.
    #[inline]
    pub fn base_rtt_two_way(&self, fwd: &RouterPath, rev: &RouterPath) -> f64 {
        let prop = (fwd.total_km() + rev.total_km()) * self.circuity / FIBER_KM_PER_MS;
        let hops = f64::from(fwd.router_hops + rev.router_hops) / 2.0;
        prop + hops * self.per_hop_ms
    }

    /// Diurnal load factor in `[0, 1]`, peaking at 20:00 local time.
    #[inline]
    pub fn diurnal_load(&self, t: SimTime, mid_longitude: f64) -> f64 {
        let h = t.local_hour(mid_longitude);
        0.5 * (1.0 + (std::f64::consts::TAU * (h - 14.0) / 24.0).sin())
    }

    /// Samples one observed ping RTT, or `None` on packet loss.
    ///
    /// `mid_longitude` locates the path for the diurnal term (use the
    /// average of the endpoint longitudes).
    ///
    /// `#[inline]`: this is the innermost call of every measurement
    /// window; letting it inline into the batched sampling loop keeps
    /// the per-ping cost at the arithmetic itself.
    #[inline]
    pub fn sample_rtt<R: Rng + ?Sized>(
        &self,
        base_ms: f64,
        t: SimTime,
        mid_longitude: f64,
        rng: &mut R,
    ) -> Option<f64> {
        if rng.gen_bool(self.loss_prob) {
            return None;
        }
        let load = self.diurnal_load(t, mid_longitude);
        let mut rtt = base_ms * (1.0 + self.diurnal_amplitude * load);
        // Lognormal jitter with the configured median.
        let z: f64 = sample_standard_normal(rng);
        rtt += self.jitter_median_ms * (self.jitter_sigma * z).exp();
        if rng.gen_bool(self.spike_prob) {
            rtt += rng.gen_range(self.spike_range_ms.0..self.spike_range_ms.1);
        }
        Some(rtt)
    }
}

/// Standard normal via Box–Muller (avoids pulling in rand_distr; `rand`
/// alone has no normal distribution).
#[inline]
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Segment;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shortcuts_geo::GeoPoint;
    use shortcuts_topology::Asn;

    fn fake_path(km: f64, hops: u32) -> RouterPath {
        let a = GeoPoint::new(0.0, 0.0).unwrap();
        let b = GeoPoint::new(0.0, 1.0).unwrap();
        RouterPath {
            segments: vec![Segment { from: a, to: b, km }],
            router_hops: hops,
            as_path: vec![Asn(1)],
            handoffs: vec![],
        }
    }

    #[test]
    fn base_rtt_scales_with_distance_and_hops() {
        let m = LatencyModel::default();
        let short = m.base_rtt_ms(&fake_path(100.0, 3));
        let long = m.base_rtt_ms(&fake_path(5000.0, 3));
        let hoppy = m.base_rtt_ms(&fake_path(100.0, 12));
        assert!(long > short);
        assert!(hoppy > short);
        // 5000 km at 1.25 circuity -> 2*6250/199.86 = ~62.5 ms + hops.
        assert!((long - (2.0 * 6250.0 / FIBER_KM_PER_MS + 3.0 * m.per_hop_ms)).abs() < 1e-9);
    }

    #[test]
    fn diurnal_peaks_in_evening() {
        let m = LatencyModel::default();
        // 20:00 UTC at longitude 0.
        let evening = m.diurnal_load(SimTime(20.0 * 3600.0), 0.0);
        let morning = m.diurnal_load(SimTime(8.0 * 3600.0), 0.0);
        assert!(evening > 0.95, "evening load ~1, got {evening}");
        assert!(morning < 0.1, "morning load ~0, got {morning}");
    }

    #[test]
    fn sample_rtt_is_noisy_but_anchored() {
        let m = LatencyModel::default();
        let base = 50.0;
        let mut rng = StdRng::seed_from_u64(11);
        let mut samples = Vec::new();
        for _ in 0..2000 {
            if let Some(r) = m.sample_rtt(base, SimTime(0.0), 0.0, &mut rng) {
                samples.push(r);
            }
        }
        assert!(samples.len() > 1900, "loss should be ~1%");
        // All samples above base (jitter/diurnal/spike only add).
        assert!(samples.iter().all(|&r| r >= base));
        // Median close to base (within a few ms).
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(median < base + 5.0, "median {median}");
        // Some spikes should appear in 2000 samples at 1.2% spike prob.
        assert!(samples.iter().any(|&r| r > base + 25.0));
    }

    #[test]
    fn loss_rate_matches_config() {
        let m = LatencyModel {
            loss_prob: 0.5,
            ..LatencyModel::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let lost = (0..2000)
            .filter(|_| m.sample_rtt(10.0, SimTime(0.0), 0.0, &mut rng).is_none())
            .count();
        assert!((800..1200).contains(&lost), "lost {lost} of 2000");
    }

    #[test]
    fn zero_noise_model_is_deterministic() {
        let m = LatencyModel {
            jitter_median_ms: 0.0,
            spike_prob: 0.0,
            diurnal_amplitude: 0.0,
            loss_prob: 0.0,
            ..LatencyModel::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let a = m.sample_rtt(42.0, SimTime(0.0), 10.0, &mut rng).unwrap();
        let b = m.sample_rtt(42.0, SimTime(999.0), -50.0, &mut rng).unwrap();
        assert!((a - 42.0).abs() < 1e-12);
        assert!((b - 42.0).abs() < 1e-12);
    }

    #[test]
    fn normal_sampler_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
