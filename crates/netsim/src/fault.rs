//! Fault injection: AS outages and lossy ASes.
//!
//! Real measurement campaigns lose vantage points: probes disconnect,
//! networks have outages, paths brown out. The paper's workflow is
//! designed around this (median-of-6, "at least 3 valid RTTs",
//! responsiveness filtering). A [`FaultPlan`] lets tests and ablations
//! inject exactly these conditions and verify the pipeline stays robust
//! — the measurement analog of smoltcp's `--drop-chance` fault options.

use crate::clock::SimTime;
use shortcuts_topology::Asn;

/// A scheduled full outage of one AS.
#[derive(Debug, Clone, Copy)]
pub struct Outage {
    /// The AS that goes dark.
    pub asn: Asn,
    /// Outage start (inclusive), seconds.
    pub start: SimTime,
    /// Outage end (exclusive), seconds.
    pub end: SimTime,
}

/// Extra per-packet loss applied to any path crossing an AS.
#[derive(Debug, Clone, Copy)]
pub struct LossyAs {
    /// The AS with degraded links.
    pub asn: Asn,
    /// Additional loss probability in `[0, 1]`.
    pub extra_loss: f64,
}

/// A set of scheduled faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    outages: Vec<Outage>,
    lossy: Vec<LossyAs>,
}

impl FaultPlan {
    /// The empty plan as a constant, for fault-free hot paths that
    /// need a `&FaultPlan` without constructing one per call.
    pub const NONE: FaultPlan = FaultPlan {
        outages: Vec::new(),
        lossy: Vec::new(),
    };

    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a full outage of `asn` during `[start, end)`.
    pub fn with_outage(mut self, asn: Asn, start: SimTime, end: SimTime) -> Self {
        assert!(start.secs() <= end.secs(), "outage ends before it starts");
        self.outages.push(Outage { asn, start, end });
        self
    }

    /// Adds permanent extra loss to any path crossing `asn`.
    pub fn with_lossy_as(mut self, asn: Asn, extra_loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&extra_loss), "loss must be in [0,1]");
        self.lossy.push(LossyAs { asn, extra_loss });
        self
    }

    /// Whether `asn` is down at time `t`.
    pub fn is_down(&self, asn: Asn, t: SimTime) -> bool {
        self.outages
            .iter()
            .any(|o| o.asn == asn && o.start.secs() <= t.secs() && t.secs() < o.end.secs())
    }

    /// Whether any AS of `path` is down at `t`.
    pub fn path_down(&self, path: &[Asn], t: SimTime) -> bool {
        path.iter().any(|&a| self.is_down(a, t))
    }

    /// Combined extra loss over the path (probability that at least one
    /// lossy AS drops the packet).
    pub fn path_extra_loss(&self, path: &[Asn]) -> f64 {
        let mut pass = 1.0;
        for asn in path {
            for l in &self.lossy {
                if l.asn == *asn {
                    pass *= 1.0 - l.extra_loss;
                }
            }
        }
        1.0 - pass
    }

    /// Whether the plan contains any fault at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.lossy.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_window_is_half_open() {
        let plan = FaultPlan::none().with_outage(Asn(5), SimTime(10.0), SimTime(20.0));
        assert!(!plan.is_down(Asn(5), SimTime(9.9)));
        assert!(plan.is_down(Asn(5), SimTime(10.0)));
        assert!(plan.is_down(Asn(5), SimTime(19.9)));
        assert!(!plan.is_down(Asn(5), SimTime(20.0)));
        assert!(!plan.is_down(Asn(6), SimTime(15.0)));
    }

    #[test]
    fn path_down_any_hop() {
        let plan = FaultPlan::none().with_outage(Asn(2), SimTime(0.0), SimTime(100.0));
        assert!(plan.path_down(&[Asn(1), Asn(2), Asn(3)], SimTime(50.0)));
        assert!(!plan.path_down(&[Asn(1), Asn(3)], SimTime(50.0)));
    }

    #[test]
    fn extra_loss_composes() {
        let plan = FaultPlan::none()
            .with_lossy_as(Asn(1), 0.5)
            .with_lossy_as(Asn(2), 0.5);
        let loss = plan.path_extra_loss(&[Asn(1), Asn(2)]);
        assert!((loss - 0.75).abs() < 1e-12);
        assert_eq!(plan.path_extra_loss(&[Asn(3)]), 0.0);
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.path_down(&[Asn(1)], SimTime(0.0)));
        assert_eq!(plan.path_extra_loss(&[Asn(1)]), 0.0);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1]")]
    fn rejects_invalid_loss() {
        let _ = FaultPlan::none().with_lossy_as(Asn(1), 1.5);
    }
}
