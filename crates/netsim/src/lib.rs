//! # shortcuts-netsim
//!
//! Data-plane simulation on top of the AS topology: router-level path
//! expansion, an RTT model, and a ping engine.
//!
//! The paper measures one thing — **RTT between pairs of IP endpoints** —
//! so this crate's job is to answer "what would a ping between these two
//! hosts see at time *t*?" in a way that preserves the phenomena the
//! study depends on:
//!
//! - **Path inflation**: the AS path comes from valley-free routing
//!   ([`shortcuts_topology::routing`]); [`path`] expands it to a
//!   router-level geographic trajectory using *hot-potato* handoffs at
//!   common PoP cities, so policy detours translate into real kilometers.
//! - **Propagation floor**: kilometers become milliseconds at 2/3 c with
//!   a fiber-circuity factor (cables don't follow great circles).
//! - **Noise**: lognormal queueing jitter, occasional heavy spikes (the
//!   outliers that force the paper to use medians), diurnal load, and
//!   packet loss.
//! - **Failures**: [`fault::FaultPlan`] injects AS outages and lossy
//!   links for failure-injection tests, in the spirit of smoltcp's
//!   fault-injection examples.
//!
//! The engine co-owns its inputs behind `Arc`s and keeps no
//! per-campaign state; campaigns hold a [`ping::PingHandle`] each
//! (fault plan + ping accounting) so many campaigns can share one
//! engine — and its pair cache — concurrently.
//!
//! ## Example
//!
//! ```
//! use shortcuts_topology::{Topology, TopologyConfig, routing::Router};
//! use shortcuts_netsim::{HostRegistry, LatencyModel, PingEngine, SimClock};
//! use std::sync::Arc;
//!
//! let topo = Arc::new(Topology::generate(&TopologyConfig::small(), 1));
//! let router = Arc::new(Router::new(Arc::clone(&topo)));
//! let mut hosts = HostRegistry::new();
//! // Put one host in each of two eyeball ASes.
//! let eyes = topo.eyeball_asns();
//! let a = hosts.add_host_in_as(&topo, eyes[0], None).unwrap();
//! let b = hosts.add_host_in_as(&topo, eyes[1], None).unwrap();
//! let engine = PingEngine::new(topo, router, Arc::new(hosts), LatencyModel::default());
//! let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(9);
//! let clock = SimClock::start();
//! let reply = engine.ping(a, b, clock.now(), &mut rng);
//! // Loss is possible but a reply carries a positive RTT.
//! if let Some(rtt) = reply { assert!(rtt > 0.0); }
//! ```

pub mod clock;
pub mod fasthash;
pub mod fault;
pub mod host;
pub mod latency;
pub mod path;
pub mod ping;
pub mod traceroute;

pub use clock::SimClock;
pub use fault::FaultPlan;
pub use host::{Host, HostId, HostKind, HostRegistry};
pub use latency::LatencyModel;
pub use path::{expand_path, RouterPath};
pub use ping::{EngineStats, PairBlock, PingEngine, PingHandle, Pinger, SampleTally};
pub use traceroute::{Traceroute, TracerouteHop};
