//! Simulation time.
//!
//! The campaign runs on simulated wall-clock time, not real time: the
//! paper's workflow fires a measurement round every 12 hours for ~27
//! days, and RTTs have a diurnal component, so time must be explicit
//! and fast-forwardable.

/// Seconds in a simulated day.
pub const DAY_SECS: f64 = 86_400.0;

/// A point in simulated time, in seconds since campaign start.
///
/// Campaign start is defined as **midnight UTC, 20 April 2017** — the
/// first day of the paper's measurement window — but nothing depends on
/// the absolute epoch, only on offsets.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Seconds since campaign start.
    pub fn secs(&self) -> f64 {
        self.0
    }

    /// Hours since campaign start.
    pub fn hours(&self) -> f64 {
        self.0 / 3600.0
    }

    /// Days since campaign start.
    pub fn days(&self) -> f64 {
        self.0 / DAY_SECS
    }

    /// UTC hour-of-day in `[0, 24)`.
    pub fn utc_hour(&self) -> f64 {
        (self.0 / 3600.0).rem_euclid(24.0)
    }

    /// Local hour-of-day in `[0, 24)` at a given longitude, using the
    /// 15°-per-hour approximation (good enough for diurnal load).
    pub fn local_hour(&self, lon_deg: f64) -> f64 {
        (self.utc_hour() + lon_deg / 15.0).rem_euclid(24.0)
    }

    /// Returns this time advanced by `secs` seconds.
    pub fn plus_secs(&self, secs: f64) -> SimTime {
        SimTime(self.0 + secs)
    }
}

/// An advancing simulation clock.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at campaign start (t = 0).
    pub fn start() -> Self {
        SimClock { now: SimTime(0.0) }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `secs` seconds.
    pub fn advance_secs(&mut self, secs: f64) {
        assert!(secs >= 0.0, "time cannot go backwards");
        self.now = self.now.plus_secs(secs);
    }

    /// Advances the clock by whole minutes.
    pub fn advance_minutes(&mut self, minutes: f64) {
        self.advance_secs(minutes * 60.0);
    }

    /// Advances the clock by hours.
    pub fn advance_hours(&mut self, hours: f64) {
        self.advance_secs(hours * 3600.0);
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let mut c = SimClock::start();
        assert_eq!(c.now().secs(), 0.0);
        c.advance_hours(12.0);
        assert_eq!(c.now().hours(), 12.0);
        c.advance_minutes(30.0);
        assert!((c.now().hours() - 12.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_rejects_negative_advance() {
        let mut c = SimClock::start();
        c.advance_secs(-1.0);
    }

    #[test]
    fn utc_hour_wraps() {
        let t = SimTime(26.0 * 3600.0);
        assert!((t.utc_hour() - 2.0).abs() < 1e-12);
        assert!((t.days() - 26.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn local_hour_offsets_by_longitude() {
        let t = SimTime(12.0 * 3600.0); // noon UTC
        assert!((t.local_hour(0.0) - 12.0).abs() < 1e-9);
        // New York (~ -74°): about 7.07 local.
        let ny = t.local_hour(-74.0);
        assert!((ny - (12.0 - 74.0 / 15.0)).abs() < 1e-9);
        // Tokyo (~139.65°): wraps past 21.
        let tk = t.local_hour(139.65);
        assert!((0.0..24.0).contains(&tk));
    }

    #[test]
    fn plus_secs_is_pure() {
        let t = SimTime(10.0);
        let u = t.plus_secs(5.0);
        assert_eq!(t.secs(), 10.0);
        assert_eq!(u.secs(), 15.0);
    }
}
