//! The measurement engine's determinism contract:
//!
//! - same seed ⇒ bit-identical [`CampaignResults`] across repeated
//!   runs;
//! - serial, parallel and round-sharded execution are
//!   indistinguishable — per-task RNG derivation makes window
//!   scheduling unobservable, per-round plan derivation and the
//!   order-independent results builder make *round* scheduling
//!   unobservable;
//! - streaming summaries are deterministic and consistent with the
//!   final results in every mode;
//! - different seeds actually change the measurements.

use colo_shortcuts::core::backend::ExecMode;
use colo_shortcuts::core::workflow::{Campaign, CampaignConfig, CampaignResults, RoundSummary};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::core::RelayType;

fn run(world: &World, exec: ExecMode) -> CampaignResults {
    let mut cfg = CampaignConfig::small();
    cfg.rounds = 2;
    cfg.exec = exec;
    // CI re-runs this suite with COLO_MEMORY_BUDGET small enough to
    // force cache eviction: every execution mode then evicts and
    // recomputes under its own schedule, and the bit-identity
    // assertions prove the budget is unobservable in the results.
    if let Ok(s) = std::env::var("COLO_MEMORY_BUDGET") {
        cfg.memory =
            colo_shortcuts::topology::MemoryBudget::parse(&s).expect("bad COLO_MEMORY_BUDGET");
    }
    Campaign::new(world, cfg).run()
}

/// Exhaustive bit-level comparison of two campaign results.
fn assert_identical(a: &CampaignResults, b: &CampaignResults) {
    assert_eq!(a.total_cases(), b.total_cases());
    for (ca, cb) in a.cases.iter().zip(&b.cases) {
        assert_eq!(ca.round, cb.round);
        assert_eq!(ca.src, cb.src);
        assert_eq!(ca.dst, cb.dst);
        assert_eq!(ca.src_country, cb.src_country);
        assert_eq!(ca.dst_country, cb.dst_country);
        assert_eq!(ca.intercontinental, cb.intercontinental);
        assert_eq!(ca.direct_ms.to_bits(), cb.direct_ms.to_bits());
        for t in RelayType::ALL {
            let (oa, ob) = (ca.outcome(t), cb.outcome(t));
            assert_eq!(oa.feasible, ob.feasible);
            match (oa.best, ob.best) {
                (Some((ha, ra)), Some((hb, rb))) => {
                    assert_eq!(ha, hb);
                    assert_eq!(ra.to_bits(), rb.to_bits());
                }
                (None, None) => {}
                other => panic!("best outcome mismatch: {other:?}"),
            }
            assert_eq!(oa.improving.len(), ob.improving.len());
            for (&(ha, ia), &(hb, ib)) in oa.improving.iter().zip(&ob.improving) {
                assert_eq!(ha, hb);
                assert_eq!(ia.to_bits(), ib.to_bits());
            }
        }
    }
    // Histories: same keys, same values in the same order.
    assert_eq!(a.direct_history.len(), b.direct_history.len());
    for (key, va) in &a.direct_history {
        let vb = b.direct_history.get(key).expect("history key present");
        assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(vb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    assert_eq!(a.link_history.len(), b.link_history.len());
    for (key, va) in &a.link_history {
        let vb = b.link_history.get(key).expect("link key present");
        assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(vb) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    // Symmetry samples (order matters: pair order within rounds).
    assert_eq!(a.symmetry_samples.len(), b.symmetry_samples.len());
    for (&(fa, ra), &(fb, rb)) in a.symmetry_samples.iter().zip(&b.symmetry_samples) {
        assert_eq!(fa.to_bits(), fb.to_bits());
        assert_eq!(ra.to_bits(), rb.to_bits());
    }
    // Relay metadata and scalar accounting.
    assert_eq!(a.relay_meta.len(), b.relay_meta.len());
    assert_eq!(a.pings_sent, b.pings_sent);
    assert_eq!(a.unresponsive_pairs, b.unresponsive_pairs);
    assert_eq!(a.avg_endpoints.to_bits(), b.avg_endpoints.to_bits());
    for i in 0..4 {
        assert_eq!(a.avg_relays[i].to_bits(), b.avg_relays[i].to_bits());
    }
    assert_eq!(a.colo_pool.relays.len(), b.colo_pool.relays.len());
    assert_eq!(a.colo_pool.funnel, b.colo_pool.funnel);
}

#[test]
fn same_seed_same_results_bitwise() {
    let world = World::build(&WorldConfig::small(), 77);
    let r1 = run(&world, ExecMode::Parallel);
    let r2 = run(&world, ExecMode::Parallel);
    assert!(!r1.cases.is_empty());
    assert_identical(&r1, &r2);
}

#[test]
fn serial_and_parallel_backends_are_equivalent() {
    let world = World::build(&WorldConfig::small(), 77);
    let serial = run(&world, ExecMode::Serial);
    let parallel = run(&world, ExecMode::Parallel);
    assert!(!serial.cases.is_empty());
    assert_identical(&serial, &parallel);
}

#[test]
fn sharded_is_bit_identical_to_serial() {
    // The acceptance check for round sharding: with rounds completing
    // out of order across a worker pool, every case, history, symmetry
    // sample and the ping count must still match a serial run bit for
    // bit — at every sharding depth, including depths past the round
    // count.
    let world = World::build(&WorldConfig::small(), 77);
    let serial = run(&world, ExecMode::Serial);
    assert!(!serial.cases.is_empty());
    for rounds_in_flight in [1, 2, 3, 16] {
        let sharded = run(&world, ExecMode::Sharded { rounds_in_flight });
        assert_identical(&serial, &sharded);
    }
}

#[test]
fn sharded_repeats_are_bit_identical() {
    let world = World::build(&WorldConfig::small(), 77);
    let mode = ExecMode::Sharded {
        rounds_in_flight: 2,
    };
    let r1 = run(&world, mode);
    let r2 = run(&world, mode);
    assert!(!r1.cases.is_empty());
    assert_identical(&r1, &r2);
}

#[test]
fn streaming_summaries_agree_across_modes() {
    // The streaming observer must see the same per-round summaries, in
    // the same (round) order, whichever scheduler ran the campaign.
    let world = World::build(&WorldConfig::small(), 77);
    let collect = |exec: ExecMode| -> Vec<RoundSummary> {
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 2;
        cfg.exec = exec;
        let mut summaries = Vec::new();
        Campaign::new(&world, cfg).run_streaming(|s| summaries.push(s.clone()));
        summaries
    };
    let serial = collect(ExecMode::Serial);
    assert_eq!(serial.len(), 2);
    assert!(serial.iter().enumerate().all(|(i, s)| s.round == i as u32));
    for exec in [
        ExecMode::Parallel,
        ExecMode::Sharded {
            rounds_in_flight: 2,
        },
    ] {
        assert_eq!(serial, collect(exec), "{exec:?}");
    }
}

#[test]
fn different_seed_changes_measurements() {
    let world = World::build(&WorldConfig::small(), 77);
    let mut cfg = CampaignConfig::small();
    cfg.rounds = 1;
    let r1 = Campaign::new(&world, cfg.clone()).run();
    cfg.seed += 1;
    let r2 = Campaign::new(&world, cfg).run();
    // Same world, different campaign seed: endpoint samples and window
    // noise both move.
    let same_medians = r1
        .cases
        .iter()
        .zip(&r2.cases)
        .filter(|(a, b)| a.direct_ms.to_bits() == b.direct_ms.to_bits())
        .count();
    assert!(
        same_medians < r1.total_cases().min(r2.total_cases()) / 2,
        "seed change left {same_medians} medians identical"
    );
}
