//! The sweep determinism contract: every scenario of a concurrent
//! cross-campaign sweep is **bit-identical** to a solo
//! `Campaign::run_streaming` of the same `(seed, config)` — down to
//! the CSV bytes — at any `jobs_in_flight` and any worker-pool size
//! (CI re-runs this suite under `RAYON_NUM_THREADS=1` and `=2`).
//!
//! Sharing the engine's pair cache and the router's destination tables
//! across campaigns is purely a scheduling choice: both caches hold
//! deterministic world facts, so a cache warmed by scenario A must be
//! unobservable to scenario B. These tests are the proof.

use colo_shortcuts::core::report::cases_csv;
use colo_shortcuts::core::sweep::{Sweep, SweepConfig, SweepScenario};
use colo_shortcuts::core::workflow::{Campaign, CampaignConfig, RoundSummary};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::topology::MemoryBudget;
use proptest::prelude::*;
use std::sync::Arc;

fn base_cfg(rounds: u32) -> CampaignConfig {
    let mut cfg = CampaignConfig::small();
    cfg.rounds = rounds;
    // CI re-runs this whole suite with COLO_MEMORY_BUDGET set small
    // enough to force cache eviction; every solo and swept run then
    // carries the budget, proving budgeted scheduling stays
    // byte-transparent at any worker count.
    if let Ok(s) = std::env::var("COLO_MEMORY_BUDGET") {
        cfg.memory = MemoryBudget::parse(&s).expect("bad COLO_MEMORY_BUDGET");
    }
    cfg
}

/// The acceptance-criteria shape: a 4-scenario sweep whose per-scenario
/// CSVs are byte-identical to four solo runs (small world here; the
/// paper-scale version runs in the `campaign_sweep` bench canary).
#[test]
fn four_scenario_sweep_matches_four_solo_runs_bytewise() {
    let world = Arc::new(World::build(&WorldConfig::small(), 90));
    let cfg = SweepConfig::from_seeds(&base_cfg(2), [2017, 2018, 2019, 2020]);
    let sweep = Sweep::new(Arc::clone(&world), cfg.clone()).run();
    assert_eq!(sweep.scenarios.len(), 4);
    for (sc, swept) in cfg.scenarios.iter().zip(&sweep.scenarios) {
        let solo = Campaign::new(&world, sc.config.clone()).run();
        assert_eq!(
            cases_csv(&swept.results),
            cases_csv(&solo),
            "{} diverged from its solo run",
            sc.label
        );
        assert_eq!(swept.results.pings_sent, solo.pings_sent, "{}", sc.label);
    }
}

/// Streamed summaries of a swept scenario equal the solo run's
/// streamed summaries, in the same (round) order.
#[test]
fn swept_streaming_summaries_match_solo_streams() {
    let world = Arc::new(World::build(&WorldConfig::small(), 91));
    let cfg = SweepConfig::from_seeds(&base_cfg(2), [7, 8]);
    let mut streamed: Vec<Vec<RoundSummary>> = vec![Vec::new(); 2];
    Sweep::new(Arc::clone(&world), cfg.clone())
        .run_streaming(|scenario, s| streamed[scenario].push(s.clone()));
    for (i, sc) in cfg.scenarios.iter().enumerate() {
        let mut solo = Vec::new();
        Campaign::new(&world, sc.config.clone()).run_streaming(|s| solo.push(s.clone()));
        assert_eq!(streamed[i], solo, "{}", sc.label);
    }
}

proptest! {
    // Each case runs several small campaigns twice (swept + solo), so
    // keep the case count modest — variety comes from the generators.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random scenario batches — mixed seeds, heterogeneous round
    /// counts, varying window shapes and sharding depths — each
    /// scenario byte-identical to its solo run.
    #[test]
    fn any_sweep_scenario_matches_its_solo_run(
        seeds in proptest::collection::vec(0u64..1_000_000, 2..4),
        extra_rounds in proptest::collection::vec(0u32..2, 2..4),
        jobs_in_flight in 1usize..12,
        pings in 4usize..7,
    ) {
        let world = Arc::new(World::build(&WorldConfig::small(), 92));
        let mut base = base_cfg(1);
        base.window.pings = pings;
        let mut cfg = SweepConfig::from_seeds(&base, seeds);
        cfg.jobs_in_flight = jobs_in_flight;
        // Heterogeneous round counts across scenarios.
        for (sc, extra) in cfg.scenarios.iter_mut().zip(&extra_rounds) {
            sc.config.rounds = 1 + extra;
        }
        let sweep = Sweep::new(Arc::clone(&world), cfg.clone()).run();
        for (sc, swept) in cfg.scenarios.iter().zip(&sweep.scenarios) {
            let solo = Campaign::new(&world, sc.config.clone()).run();
            prop_assert_eq!(
                cases_csv(&swept.results),
                cases_csv(&solo),
                "{} diverged (jobs_in_flight={})",
                &sc.label,
                jobs_in_flight
            );
            prop_assert_eq!(swept.results.pings_sent, solo.pings_sent);
            prop_assert_eq!(
                swept.results.unresponsive_pairs,
                solo.unresponsive_pairs
            );
        }
    }
}

/// The tentpole's determinism contract: a sweep squeezed into a byte
/// budget whose router share holds only ~4 destination tables (and
/// whose pair share is a handful of entries per shard) evicts and
/// recomputes constantly — and still streams CSVs **byte-identical**
/// to fully unbudgeted solo runs. Budgets bound residency, never
/// results.
#[test]
fn tiny_budget_sweep_matches_unbudgeted_solo_runs_bytewise() {
    use colo_shortcuts::topology::routing::table_approx_bytes;

    let world = Arc::new(World::build(&WorldConfig::small(), 94));
    let mut base = CampaignConfig::small();
    base.rounds = 2;
    let table = table_approx_bytes(world.topo.node_index().len());
    // Total sized so the 45% router share is ~4 tables.
    base.memory = MemoryBudget::bytes(9 * table);
    let cfg = SweepConfig::from_seeds(&base, [2017, 2018, 2019, 2020]);
    let sweep = Sweep::new(Arc::clone(&world), cfg.clone()).run();
    for (sc, swept) in cfg.scenarios.iter().zip(&sweep.scenarios) {
        let mut solo_cfg = sc.config.clone();
        solo_cfg.memory = MemoryBudget::unbounded();
        let solo = Campaign::new(&world, solo_cfg).run();
        assert_eq!(
            cases_csv(&swept.results),
            cases_csv(&solo),
            "{} diverged under a ~4-table budget",
            sc.label
        );
        assert_eq!(swept.results.pings_sent, solo.pings_sent, "{}", sc.label);
    }
}

/// Scenario-level fault plans stay scenario-level even though the
/// engine is shared: the clean twin matches a solo clean run exactly.
#[test]
fn faulty_scenario_never_contaminates_its_clean_twin() {
    use colo_shortcuts::netsim::clock::SimTime;
    use colo_shortcuts::netsim::FaultPlan;
    use colo_shortcuts::topology::AsType;

    let world = Arc::new(World::build(&WorldConfig::small(), 93));
    let clean = base_cfg(1);
    let mut faulty = clean.clone();
    let tier1 = world.topo.asns_of_type(AsType::Tier1)[0];
    faulty.faults = FaultPlan::none().with_outage(tier1, SimTime(0.0), SimTime(1e12));
    let cfg = SweepConfig {
        scenarios: vec![
            SweepScenario {
                label: "faulty".into(),
                config: faulty,
            },
            SweepScenario {
                label: "clean".into(),
                config: clean.clone(),
            },
        ],
        jobs_in_flight: 4,
        memory: clean.memory,
        churn: colo_shortcuts::topology::ChurnSchedule::none(),
    };
    let sweep = Sweep::new(Arc::clone(&world), cfg).run();
    let solo_clean = Campaign::new(&world, clean).run();
    assert_eq!(
        cases_csv(&sweep.scenarios[1].results),
        cases_csv(&solo_clean),
        "clean scenario contaminated by its faulty neighbor"
    );
    assert!(
        sweep.scenarios[0].results.unresponsive_pairs > solo_clean.unresponsive_pairs,
        "faults must actually bite in the faulty scenario"
    );
}
