//! Property-based tests on core data structures and invariants,
//! spanning the whole workspace.

use colo_shortcuts::core::analysis::stats;
use colo_shortcuts::core::feasibility;
use colo_shortcuts::core::measure::median;
use colo_shortcuts::geo::{light, GeoPoint};
use colo_shortcuts::topology::{IpAllocator, Prefix};
use proptest::prelude::*;

prop_compose! {
    fn arb_point()(lat in -90.0f64..=90.0, lon in -180.0f64..=180.0) -> GeoPoint {
        GeoPoint::new(lat, lon).expect("in range")
    }
}

proptest! {
    // ---- geometry ------------------------------------------------------

    #[test]
    fn distance_is_symmetric_nonnegative_bounded(a in arb_point(), b in arb_point()) {
        let d1 = a.distance_km(&b);
        let d2 = b.distance_km(&a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
        // Half the circumference is the max great-circle distance.
        prop_assert!(d1 <= 20_038.0);
    }

    #[test]
    fn triangle_inequality_holds(a in arb_point(), b in arb_point(), c in arb_point()) {
        let direct = a.distance_km(&b);
        let detour = a.distance_km(&c) + c.distance_km(&b);
        prop_assert!(detour + 1e-6 >= direct);
    }

    #[test]
    fn detour_factor_at_least_one(a in arb_point(), b in arb_point(), via in arb_point()) {
        prop_assume!(a.distance_km(&b) > 1.0);
        prop_assert!(a.detour_factor(&b, &via) >= 1.0);
    }

    #[test]
    fn propagation_delay_is_linear(km in 0.0f64..30_000.0) {
        let one = light::propagation_delay_ms(km);
        let two = light::propagation_delay_ms(2.0 * km);
        prop_assert!((two - 2.0 * one).abs() < 1e-9);
        prop_assert!((light::min_rtt_ms(km) - 2.0 * one).abs() < 1e-9);
    }

    // ---- feasibility (§2.4) ---------------------------------------------

    #[test]
    fn feasibility_is_monotone_in_direct_rtt(
        a in arb_point(), b in arb_point(), r in arb_point(),
        rtt in 0.0f64..1000.0, extra in 0.0f64..500.0,
    ) {
        // If a relay is feasible at some direct RTT it stays feasible at
        // any larger direct RTT.
        if feasibility::is_feasible(&a, &b, &r, rtt) {
            prop_assert!(feasibility::is_feasible(&a, &b, &r, rtt + extra));
        }
    }

    #[test]
    fn relay_on_endpoint_is_feasible_when_direct_is_honest(
        a in arb_point(), b in arb_point(),
    ) {
        // A relay exactly at an endpoint has the same light floor as the
        // direct path, so any direct RTT at/above the floor admits it.
        let floor = light::min_rtt_ms(a.distance_km(&b));
        prop_assert!(feasibility::is_feasible(&a, &b, &a, floor + 1e-6));
    }

    // ---- medians and stats -----------------------------------------------

    #[test]
    fn median_is_bounded_by_extremes(mut v in prop::collection::vec(0.0f64..1e6, 1..40)) {
        let m = median(&v).expect("non-empty");
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert!(m >= v[0] && m <= v[v.len() - 1]);
    }

    #[test]
    fn median_resists_single_outlier(base in 1.0f64..100.0, spike in 1000.0f64..1e6) {
        // Five well-behaved samples plus one spike: median stays close.
        let v = vec![base, base + 0.1, base + 0.2, base - 0.1, base - 0.2, spike];
        let m = median(&v).expect("non-empty");
        prop_assert!(m < base + 1.0);
    }

    #[test]
    fn percentile_monotone_in_p(v in prop::collection::vec(0.0f64..1e6, 1..40),
                                p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&v, lo).expect("non-empty");
        let b = stats::percentile(&v, hi).expect("non-empty");
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_bounded(v in prop::collection::vec(0.0f64..1000.0, 1..50)) {
        let xs: Vec<f64> = (0..=20).map(|i| f64::from(i) * 50.0).collect();
        let cdf = stats::cdf_at(&v, &xs);
        for w in cdf.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert!(cdf.iter().all(|&(_, f)| (0.0..=1.0).contains(&f)));
        prop_assert_eq!(cdf.last().expect("non-empty").1, 1.0);
    }

    #[test]
    fn cv_is_zero_iff_constant(x in 1.0f64..1e6, n in 2usize..20) {
        let v = vec![x; n];
        let cv = stats::coefficient_of_variation(&v).expect("non-zero mean");
        prop_assert!(cv.abs() < 1e-12);
    }

    // ---- prefixes ---------------------------------------------------------

    #[test]
    fn prefix_contains_its_own_addresses(len in 8u8..=28, idx in 0u64..200) {
        let base = std::net::Ipv4Addr::new(10, 0, 0, 0);
        let p = Prefix::new(base, len).expect("aligned");
        prop_assume!(idx < p.size());
        let ip = p.nth(idx).expect("in range");
        prop_assert!(p.contains(ip));
    }

    #[test]
    fn allocator_blocks_never_overlap(n in 2usize..40) {
        let mut alloc = IpAllocator::default();
        let blocks: Vec<Prefix> = (0..n).map(|_| alloc.alloc_prefix()).collect();
        for (i, a) in blocks.iter().enumerate() {
            for b in blocks.iter().skip(i + 1) {
                prop_assert!(!a.contains(b.base()));
                prop_assert!(!b.contains(a.base()));
            }
        }
    }
}
