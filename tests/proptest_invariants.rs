//! Property-based tests on core data structures and invariants,
//! spanning the whole workspace.

use colo_shortcuts::core::analysis::stats;
use colo_shortcuts::core::feasibility;
use colo_shortcuts::core::measure::{median, stitch};
use colo_shortcuts::core::stitch::stitch_legs;
use colo_shortcuts::geo::{light, GeoPoint};
use colo_shortcuts::topology::{IpAllocator, Prefix};
use proptest::prelude::*;

prop_compose! {
    fn arb_point()(lat in -90.0f64..=90.0, lon in -180.0f64..=180.0) -> GeoPoint {
        GeoPoint::new(lat, lon).expect("in range")
    }
}

prop_compose! {
    /// An arbitrary synthetic round: `n` endpoints spread over the
    /// globe, all pairs with random reverse flags, `m` relays of
    /// cycling types, and an arbitrary direct success/failure pattern.
    fn arb_alignment_case()(
        n in 3usize..7,
        m in 0usize..6,
        seed in 0u64..u64::MAX,
    ) -> (
        colo_shortcuts::core::plan::RoundPlan,
        Vec<Option<f64>>,
    ) {
        use colo_shortcuts::core::plan::{PlannedEndpoint, PlannedPair, RoundPlan};
        use colo_shortcuts::core::relays::{Relay, RelayType};
        use colo_shortcuts::geo::{CityId, Continent, CountryCode};
        use colo_shortcuts::netsim::clock::SimTime;
        use colo_shortcuts::netsim::HostId;
        use colo_shortcuts::topology::Asn;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(seed);
        let endpoints: Vec<PlannedEndpoint> = (0..n)
            .map(|i| PlannedEndpoint {
                host: HostId(1 + i as u32),
                country: CountryCode::new("US").expect("valid"),
                city: CityId(0),
                continent: Continent::NorthAmerica,
                location: GeoPoint::new(
                    rng.gen_range(-60.0..60.0),
                    rng.gen_range(-170.0..170.0),
                )
                .expect("in range"),
            })
            .collect();
        let mut pairs = Vec::new();
        for src in 0..n {
            for dst in (src + 1)..n {
                pairs.push(PlannedPair {
                    src,
                    dst,
                    reverse: rng.gen_bool(0.5),
                });
            }
        }
        let relays: Vec<Relay> = (0..m)
            .map(|i| Relay {
                host: HostId(100 + i as u32),
                asn: Asn(100 + i as u32),
                city: CityId(0),
                location: GeoPoint::new(
                    rng.gen_range(-60.0..60.0),
                    rng.gen_range(-170.0..170.0),
                )
                .expect("in range"),
                country: CountryCode::new("DE").expect("valid"),
                rtype: RelayType::ALL[i % 4],
                facility: None,
            })
            .collect();
        let direct: Vec<Option<f64>> = pairs
            .iter()
            .map(|_| rng.gen_bool(0.75).then(|| rng.gen_range(1.0..400.0)))
            .collect();
        let plan = RoundPlan {
            round: rng.gen_range(0..45),
            t0: SimTime(0.0),
            endpoints,
            pairs,
            relays,
        };
        (plan, direct)
    }
}

fn empty_pool() -> colo_shortcuts::core::colo::ColoPool {
    colo_shortcuts::core::colo::ColoPool {
        relays: Vec::new(),
        funnel: colo_shortcuts::core::colo::FilterFunnel {
            initial: 0,
            single_facility: 0,
            pingable: 0,
            ownership: 0,
            presence: 0,
            geolocated: 0,
        },
    }
}

proptest! {
    // ---- geometry ------------------------------------------------------

    #[test]
    fn distance_is_symmetric_nonnegative_bounded(a in arb_point(), b in arb_point()) {
        let d1 = a.distance_km(&b);
        let d2 = b.distance_km(&a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
        // Half the circumference is the max great-circle distance.
        prop_assert!(d1 <= 20_038.0);
    }

    #[test]
    fn triangle_inequality_holds(a in arb_point(), b in arb_point(), c in arb_point()) {
        let direct = a.distance_km(&b);
        let detour = a.distance_km(&c) + c.distance_km(&b);
        prop_assert!(detour + 1e-6 >= direct);
    }

    #[test]
    fn detour_factor_at_least_one(a in arb_point(), b in arb_point(), via in arb_point()) {
        prop_assume!(a.distance_km(&b) > 1.0);
        prop_assert!(a.detour_factor(&b, &via) >= 1.0);
    }

    #[test]
    fn propagation_delay_is_linear(km in 0.0f64..30_000.0) {
        let one = light::propagation_delay_ms(km);
        let two = light::propagation_delay_ms(2.0 * km);
        prop_assert!((two - 2.0 * one).abs() < 1e-9);
        prop_assert!((light::min_rtt_ms(km) - 2.0 * one).abs() < 1e-9);
    }

    // ---- feasibility (§2.4) ---------------------------------------------

    #[test]
    fn feasibility_is_monotone_in_direct_rtt(
        a in arb_point(), b in arb_point(), r in arb_point(),
        rtt in 0.0f64..1000.0, extra in 0.0f64..500.0,
    ) {
        // If a relay is feasible at some direct RTT it stays feasible at
        // any larger direct RTT.
        if feasibility::is_feasible(&a, &b, &r, rtt) {
            prop_assert!(feasibility::is_feasible(&a, &b, &r, rtt + extra));
        }
    }

    #[test]
    fn relay_on_endpoint_is_feasible_when_direct_is_honest(
        a in arb_point(), b in arb_point(),
    ) {
        // A relay exactly at an endpoint has the same light floor as the
        // direct path, so any direct RTT at/above the floor admits it.
        let floor = light::min_rtt_ms(a.distance_km(&b));
        prop_assert!(feasibility::is_feasible(&a, &b, &a, floor + 1e-6));
    }

    // ---- medians and stats -----------------------------------------------

    #[test]
    fn median_is_bounded_by_extremes(mut v in prop::collection::vec(0.0f64..1e6, 1..40)) {
        let m = median(&v).expect("non-empty");
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert!(m >= v[0] && m <= v[v.len() - 1]);
    }

    #[test]
    fn median_resists_single_outlier(base in 1.0f64..100.0, spike in 1000.0f64..1e6) {
        // Five well-behaved samples plus one spike: median stays close.
        let v = vec![base, base + 0.1, base + 0.2, base - 0.1, base - 0.2, spike];
        let m = median(&v).expect("non-empty");
        prop_assert!(m < base + 1.0);
    }

    #[test]
    fn median_matches_sorting_reference(v in prop::collection::vec(0.0f64..1e6, 1..40)) {
        // The O(n) selection median must agree bit-for-bit with the
        // straightforward sort-based definition, on both the stack-
        // buffer (n ≤ 16) and heap paths.
        let selected = median(&v).expect("non-empty");
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        let reference = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        prop_assert_eq!(selected.to_bits(), reference.to_bits());
    }

    // ---- stitching (§2.5 step 4) ----------------------------------------

    #[test]
    fn stitched_rtt_equals_sum_of_leg_medians(
        leg1 in prop::collection::vec(0.1f64..500.0, 3..10),
        leg2 in prop::collection::vec(0.1f64..500.0, 3..10),
    ) {
        // A relayed path's RTT is exactly the sum of its two legs'
        // window medians — no averaging, no re-measurement.
        let m1 = median(&leg1).expect("non-empty");
        let m2 = median(&leg2).expect("non-empty");
        prop_assert_eq!(stitch(m1, m2).to_bits(), (m1 + m2).to_bits());
        prop_assert_eq!(
            stitch_legs(Some(m1), Some(m2)).expect("both legs").to_bits(),
            (m1 + m2).to_bits()
        );
        // A path with a missing leg has no RTT at all.
        prop_assert!(stitch_legs(Some(m1), None).is_none());
        prop_assert!(stitch_legs(None, Some(m2)).is_none());
    }

    #[test]
    fn stitch_layer_best_is_min_leg_sum(
        a in 1.0f64..300.0, b in 1.0f64..300.0,
        c in 1.0f64..300.0, e in 1.0f64..300.0,
        d in 1.0f64..600.0,
    ) {
        // Two relays of the same type, all four legs measured: the
        // stitched best must be exactly the smaller leg sum, and the
        // improving list exactly the sums below the direct median.
        use colo_shortcuts::core::plan::{OverlayPlan, PlannedEndpoint, PlannedPair, RoundPlan};
        use colo_shortcuts::core::relays::{Relay, RelayType};
        use colo_shortcuts::core::stitch::ResultsBuilder;
        use colo_shortcuts::core::colo::{ColoPool, FilterFunnel};
        use colo_shortcuts::geo::{CityId, Continent, CountryCode, GeoPoint};
        use colo_shortcuts::netsim::clock::SimTime;
        use colo_shortcuts::netsim::HostId;
        use colo_shortcuts::topology::Asn;

        let endpoint = |id: u32, cc: &str| PlannedEndpoint {
            host: HostId(id),
            country: CountryCode::new(cc).expect("valid"),
            city: CityId(0),
            continent: Continent::Europe,
            location: GeoPoint::new(0.0, f64::from(id)).expect("valid"),
        };
        let relay = |id: u32| Relay {
            host: HostId(id),
            asn: Asn(id),
            city: CityId(0),
            location: GeoPoint::new(1.0, f64::from(id)).expect("valid"),
            country: CountryCode::new("DE").expect("valid"),
            rtype: RelayType::Cor,
            facility: None,
        };
        let plan = RoundPlan {
            round: 0,
            t0: SimTime(0.0),
            endpoints: vec![endpoint(1, "US"), endpoint(2, "DE")],
            pairs: vec![PlannedPair { src: 0, dst: 1, reverse: false }],
            relays: vec![relay(10), relay(11)],
        };
        let overlay = OverlayPlan {
            feasible: vec![vec![0, 1]],
            needed: vec![(0, 0), (0, 1), (1, 0), (1, 1)],
        };
        let mut builder = ResultsBuilder::new();
        builder.absorb_round(
            &plan,
            &overlay,
            &[Some(d)],
            &[],
            &[Some(a), Some(c), Some(b), Some(e)],
        );
        let results = builder.finish(
            ColoPool {
                relays: Vec::new(),
                funnel: FilterFunnel {
                    initial: 0,
                    single_facility: 0,
                    pingable: 0,
                    ownership: 0,
                    presence: 0,
                    geolocated: 0,
                },
            },
            0,
        );
        let case = &results.cases[0];
        let out = case.outcome(RelayType::Cor);
        let (sum0, sum1) = (a + b, c + e);
        let want_best = sum0.min(sum1);
        let (_, got_best) = out.best.expect("both relays measured");
        prop_assert_eq!(got_best.to_bits(), want_best.to_bits());
        prop_assert_eq!(out.feasible, 2);
        let want_improving =
            usize::from(sum0 < d) + usize::from(sum1 < d);
        prop_assert_eq!(out.improving.len(), want_improving);
        for &(_, imp) in &out.improving {
            prop_assert!(imp > 0.0);
        }
    }

    // ---- plan/stitch alignment (§2.5 plumbing) ---------------------------

    #[test]
    fn reverse_tasks_are_the_successful_forward_subsequence(
        case in arb_alignment_case(),
    ) {
        // The reverse schedule must be exactly the reverse-flagged
        // pairs whose forward window produced a median, in pair order,
        // with the direction swapped — never more, never fewer, never
        // reordered.
        use colo_shortcuts::core::backend::TaskKind;
        let (plan, direct) = case;
        let tasks = plan.reverse_tasks(&direct);
        let expected: Vec<_> = plan
            .pairs
            .iter()
            .zip(&direct)
            .filter(|(p, d)| p.reverse && d.is_some())
            .map(|(p, _)| (plan.endpoints[p.dst].host, plan.endpoints[p.src].host))
            .collect();
        prop_assert_eq!(tasks.len(), expected.len());
        for (t, &(src, dst)) in tasks.iter().zip(&expected) {
            prop_assert_eq!(t.src, src);
            prop_assert_eq!(t.dst, dst);
            prop_assert!(t.kind == TaskKind::Reverse);
            prop_assert_eq!(t.round, plan.round);
        }
    }

    #[test]
    fn links_stay_position_aligned_with_needed(
        case in arb_alignment_case(),
        link_seed in 0u64..u64::MAX,
    ) {
        // Under an arbitrary pattern of direct and overlay-link
        // failures, every measured link must land in the stitched
        // output under the host pair its `needed` position names, and
        // a relay must count as feasible-and-measured iff both of its
        // legs produced medians.
        use colo_shortcuts::core::plan::plan_overlay;
        use colo_shortcuts::core::stitch::ResultsBuilder;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::HashMap;

        let (plan, direct) = case;
        let overlay = plan_overlay(&plan, &direct);
        let tasks = overlay.link_tasks(&plan);
        prop_assert_eq!(tasks.len(), overlay.needed.len());
        for (t, &(ei, ri)) in tasks.iter().zip(&overlay.needed) {
            prop_assert_eq!(t.src, plan.endpoints[ei].host);
            prop_assert_eq!(t.dst, plan.relays[ri as usize].host);
        }

        // Arbitrary link failures, position-aligned with `needed`.
        let mut rng = StdRng::seed_from_u64(link_seed);
        let links: Vec<Option<f64>> = overlay
            .needed
            .iter()
            .map(|_| rng.gen_bool(0.7).then(|| rng.gen_range(1.0..300.0)))
            .collect();
        let reverse = vec![None; plan.reverse_tasks(&direct).len()];
        let mut builder = ResultsBuilder::new();
        builder.absorb_round(&plan, &overlay, &direct, &reverse, &links);
        let results = builder.finish(empty_pool(), 0);

        // Every measured link is in the history under its own key —
        // and nothing else is.
        let measured = links.iter().filter(|l| l.is_some()).count();
        let total: usize = results.link_history.values().map(Vec::len).sum();
        prop_assert_eq!(total, measured);
        let mut link_val: HashMap<(usize, u32), f64> = HashMap::new();
        for (&(ei, ri), l) in overlay.needed.iter().zip(&links) {
            let Some(v) = *l else { continue };
            link_val.insert((ei, ri), v);
            let (a, b) = (plan.endpoints[ei].host, plan.relays[ri as usize].host);
            let key = if a <= b { (a, b) } else { (b, a) };
            let history = &results.link_history[&key];
            prop_assert!(history.iter().any(|x| x.to_bits() == v.to_bits()));
        }

        // Feasible-and-measured counts per case and type must match a
        // recomputation from the aligned link pattern.
        let mut cases = results.cases.iter();
        for (pair_idx, (pair, d)) in plan.pairs.iter().zip(&direct).enumerate() {
            if d.is_none() {
                continue;
            }
            let case = cases.next().expect("one case per responsive pair");
            let mut want = [0u32; 4];
            for &ri in &overlay.feasible[pair_idx] {
                if link_val.contains_key(&(pair.src, ri))
                    && link_val.contains_key(&(pair.dst, ri))
                {
                    want[plan.relays[ri as usize].rtype.index()] += 1;
                }
            }
            for (t, &w) in want.iter().enumerate() {
                prop_assert_eq!(case.outcomes[t].feasible, w);
            }
        }
        prop_assert!(cases.next().is_none());
    }

    #[test]
    fn percentile_monotone_in_p(v in prop::collection::vec(0.0f64..1e6, 1..40),
                                p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&v, lo).expect("non-empty");
        let b = stats::percentile(&v, hi).expect("non-empty");
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_bounded(v in prop::collection::vec(0.0f64..1000.0, 1..50)) {
        let xs: Vec<f64> = (0..=20).map(|i| f64::from(i) * 50.0).collect();
        let cdf = stats::cdf_at(&v, &xs);
        for w in cdf.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert!(cdf.iter().all(|&(_, f)| (0.0..=1.0).contains(&f)));
        prop_assert_eq!(cdf.last().expect("non-empty").1, 1.0);
    }

    #[test]
    fn cv_is_zero_iff_constant(x in 1.0f64..1e6, n in 2usize..20) {
        let v = vec![x; n];
        let cv = stats::coefficient_of_variation(&v).expect("non-zero mean");
        prop_assert!(cv.abs() < 1e-12);
    }

    // ---- prefixes ---------------------------------------------------------

    #[test]
    fn prefix_contains_its_own_addresses(len in 8u8..=28, idx in 0u64..200) {
        let base = std::net::Ipv4Addr::new(10, 0, 0, 0);
        let p = Prefix::new(base, len).expect("aligned");
        prop_assume!(idx < p.size());
        let ip = p.nth(idx).expect("in range");
        prop_assert!(p.contains(ip));
    }

    #[test]
    fn allocator_blocks_never_overlap(n in 2usize..40) {
        let mut alloc = IpAllocator::default();
        let blocks: Vec<Prefix> = (0..n).map(|_| alloc.alloc_prefix()).collect();
        for (i, a) in blocks.iter().enumerate() {
            for b in blocks.iter().skip(i + 1) {
                prop_assert!(!a.contains(b.base()));
                prop_assert!(!b.contains(a.base()));
            }
        }
    }
}
