//! The churn campaign contract:
//!
//! - a churn-free schedule — empty, or whose only batches fall past
//!   the last round — is **byte-identical** at the CSV level to no
//!   schedule at all;
//! - a churning campaign is bit-identical across serial, parallel and
//!   round-sharded execution: segment barriers keep every in-flight
//!   window on one topology epoch, and within a segment the usual
//!   per-task RNG derivation makes scheduling unobservable;
//! - a sweep carrying a sweep-level schedule matches solo campaigns
//!   running the same schedule on the same world;
//! - churn actually bites: downing a Tier1 at mid-campaign changes
//!   the measurements.

use colo_shortcuts::core::backend::ExecMode;
use colo_shortcuts::core::report::cases_csv;
use colo_shortcuts::core::sweep::{Sweep, SweepConfig};
use colo_shortcuts::core::workflow::{Campaign, CampaignConfig};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::topology::{AsType, ChurnSchedule, MemoryBudget, TopologyDelta};
use std::sync::Arc;

fn base_cfg(rounds: u32) -> CampaignConfig {
    let mut cfg = CampaignConfig::small();
    cfg.rounds = rounds;
    // CI re-runs this suite with COLO_MEMORY_BUDGET small enough to
    // force cache eviction mid-churn: stale tables are then evicted
    // and rebuilt fresh under the current view, and the bit-identity
    // assertions prove repair and eviction compose transparently.
    if let Ok(s) = std::env::var("COLO_MEMORY_BUDGET") {
        cfg.memory = MemoryBudget::parse(&s).expect("bad COLO_MEMORY_BUDGET");
    }
    cfg
}

/// A base transit link of `world`'s topology, for valid link deltas.
fn transit_link(world: &World) -> (colo_shortcuts::topology::Asn, colo_shortcuts::topology::Asn) {
    world
        .topo
        .ases()
        .iter()
        .find_map(|info| {
            world
                .topo
                .adjacency(info.asn)
                .customers
                .first()
                .map(|&c| (info.asn, c))
        })
        .expect("small world has at least one transit link")
}

#[test]
fn churn_free_schedule_is_byte_identical_to_no_schedule() {
    let world = World::build(&WorldConfig::small(), 77);
    let clean = Campaign::new(&world, base_cfg(2)).run();
    assert!(!clean.cases.is_empty());

    // A schedule whose only batch falls past the last round never
    // fires: segments() degenerates to one full-range epoch.
    let (a, b) = transit_link(&world);
    let mut cfg = base_cfg(2);
    cfg.churn.add(99, TopologyDelta::LinkDown { a, b });
    let late = Campaign::new(&world, cfg).run();
    assert_eq!(cases_csv(&clean), cases_csv(&late));
    assert_eq!(clean.pings_sent, late.pings_sent);

    // And the explicit empty schedule is the default.
    let mut cfg = base_cfg(2);
    cfg.churn = ChurnSchedule::none();
    let empty = Campaign::new(&world, cfg).run();
    assert_eq!(cases_csv(&clean), cases_csv(&empty));
}

#[test]
fn churny_campaign_is_identical_across_exec_modes() {
    let world = World::build(&WorldConfig::small(), 77);
    let (a, b) = transit_link(&world);
    let tier1 = world.topo.asns_of_type(AsType::Tier1)[0];
    let mut schedule = ChurnSchedule::none();
    schedule.add(1, TopologyDelta::LinkDown { a, b });
    schedule.add(2, TopologyDelta::AsDown { asn: tier1 });
    schedule.add(2, TopologyDelta::LinkUp { a, b });

    let run = |exec: ExecMode| {
        let mut cfg = base_cfg(3);
        cfg.exec = exec;
        cfg.churn = schedule.clone();
        Campaign::new(&world, cfg).run()
    };
    let serial = run(ExecMode::Serial);
    assert!(!serial.cases.is_empty());
    for exec in [
        ExecMode::Parallel,
        ExecMode::Sharded {
            rounds_in_flight: 1,
        },
        ExecMode::Sharded {
            rounds_in_flight: 2,
        },
        ExecMode::Sharded {
            rounds_in_flight: 16,
        },
    ] {
        let other = run(exec);
        assert_eq!(cases_csv(&serial), cases_csv(&other), "{exec:?}");
        assert_eq!(serial.pings_sent, other.pings_sent, "{exec:?}");
    }
}

#[test]
fn sweep_with_churn_matches_solo_campaigns_with_same_schedule() {
    let world = Arc::new(World::build(&WorldConfig::small(), 90));
    let (a, b) = transit_link(&world);
    let mut base = base_cfg(2);
    base.churn.add(1, TopologyDelta::LinkDown { a, b });
    // from_seeds lifts the base schedule to sweep level: the world is
    // shared, so churn hits every scenario at the same absolute round.
    let cfg = SweepConfig::from_seeds(&base, [2017, 2018]);
    assert!(!cfg.churn.is_empty() && cfg.scenarios[0].config.churn.is_empty());
    let sweep = Sweep::new(Arc::clone(&world), cfg.clone()).run();
    for (sc, swept) in cfg.scenarios.iter().zip(&sweep.scenarios) {
        let mut solo_cfg = sc.config.clone();
        solo_cfg.churn = base.churn.clone();
        let solo = Campaign::new(&world, solo_cfg).run();
        assert_eq!(
            cases_csv(&swept.results),
            cases_csv(&solo),
            "{} diverged from its churning solo run",
            sc.label
        );
        assert_eq!(swept.results.pings_sent, solo.pings_sent, "{}", sc.label);
    }
}

#[test]
#[should_panic(expected = "per-scenario churn")]
fn per_scenario_churn_is_rejected() {
    let world = Arc::new(World::build(&WorldConfig::small(), 90));
    let (a, b) = transit_link(&world);
    let mut cfg = SweepConfig::from_seeds(&base_cfg(1), [2017, 2018]);
    cfg.scenarios[0]
        .config
        .churn
        .add(0, TopologyDelta::LinkDown { a, b });
    let _ = Sweep::new(world, cfg).run();
}

#[test]
fn churn_changes_the_measurements() {
    let world = World::build(&WorldConfig::small(), 77);
    let clean = Campaign::new(&world, base_cfg(2)).run();
    let tier1 = world.topo.asns_of_type(AsType::Tier1)[0];
    let mut cfg = base_cfg(2);
    cfg.churn.add(1, TopologyDelta::AsDown { asn: tier1 });
    let churned = Campaign::new(&world, cfg).run();
    // Round 0 is untouched; from round 1 on, paths through the downed
    // Tier1 reroute or black-hole, so the CSVs must diverge.
    assert_ne!(
        cases_csv(&clean),
        cases_csv(&churned),
        "downing {tier1:?} was unobservable"
    );
}
