//! Cross-crate invariants between routing, geometry and the RTT model,
//! on generated topologies.

use colo_shortcuts::geo::min_rtt_ms;
use colo_shortcuts::netsim::{HostRegistry, LatencyModel, PingEngine};
use colo_shortcuts::topology::routing::{compute_table, RouteClass, Router};
use colo_shortcuts::topology::{Topology, TopologyConfig};

#[test]
fn all_sampled_paths_are_valley_free() {
    let topo = Topology::generate(&TopologyConfig::small(), 404);
    let eyes = topo.eyeball_asns();
    for &dst in eyes.iter().step_by(9) {
        let table = compute_table(&topo, dst);
        for &src in eyes.iter().step_by(7) {
            let Some(path) = table.as_path(src) else {
                continue;
            };
            // Stage machine: Up (customer->provider), one Peer, Down.
            let mut stage = 0; // 0=up, 1=peer, 2=down
            for w in path.windows(2) {
                let adj = topo.adjacency(w[0]);
                let step = if adj.providers.contains(&w[1]) {
                    0
                } else if adj.peers.contains(&w[1]) {
                    1
                } else if adj.customers.contains(&w[1]) {
                    2
                } else {
                    panic!("nonexistent link {} -> {}", w[0], w[1]);
                };
                assert!(step >= stage, "valley in {path:?}");
                if step == 1 {
                    assert!(stage < 1, "two peer hops in {path:?}");
                }
                stage = step;
            }
        }
    }
}

#[test]
fn route_classes_are_consistent_with_next_hops() {
    let topo = Topology::generate(&TopologyConfig::small(), 405);
    let dst = topo.eyeball_asns()[0];
    let table = compute_table(&topo, dst);
    for info in topo.ases() {
        let Some(entry) = table.route(info.asn) else {
            continue;
        };
        if info.asn == dst {
            continue;
        }
        let adj = topo.adjacency(info.asn);
        match entry.class() {
            RouteClass::Customer => assert!(adj.customers.contains(&entry.next_hop())),
            RouteClass::Peer => assert!(adj.peers.contains(&entry.next_hop())),
            RouteClass::Provider => assert!(adj.providers.contains(&entry.next_hop())),
        }
    }
}

#[test]
fn base_rtt_respects_speed_of_light_floor() {
    let topo = std::sync::Arc::new(Topology::generate(&TopologyConfig::small(), 406));
    let router = std::sync::Arc::new(Router::new(std::sync::Arc::clone(&topo)));
    let mut hosts = HostRegistry::new();
    let eyes = topo.eyeball_asns();
    let mut ids = Vec::new();
    for &asn in eyes.iter().step_by(5).take(12) {
        if let Ok(id) = hosts.add_host_in_as(&topo, asn, None) {
            ids.push(id);
        }
    }
    let engine = PingEngine::new(
        std::sync::Arc::clone(&topo),
        router,
        std::sync::Arc::new(hosts),
        LatencyModel::default(),
    );
    for (i, &a) in ids.iter().enumerate() {
        for &b in ids.iter().skip(i + 1) {
            let Some(base) = engine.base_rtt(a, b) else {
                continue;
            };
            let (ha, hb) = (engine.hosts().get(a), engine.hosts().get(b));
            let floor = min_rtt_ms(ha.location.distance_km(&hb.location));
            assert!(
                base >= floor - 1e-9,
                "base {base} under light floor {floor}"
            );
        }
    }
}

#[test]
fn policy_paths_are_never_shorter_than_shortest_paths() {
    use colo_shortcuts::topology::routing::compute_table_shortest;
    let topo = Topology::generate(&TopologyConfig::small(), 407);
    let dst = topo.eyeball_asns()[3];
    let policy = compute_table(&topo, dst);
    let shortest = compute_table_shortest(&topo, dst);
    for info in topo.ases() {
        let (Some(p), Some(s)) = (policy.as_path(info.asn), shortest.as_path(info.asn)) else {
            continue;
        };
        assert!(
            p.len() >= s.len(),
            "policy path shorter than shortest for {}: {} vs {}",
            info.asn,
            p.len(),
            s.len()
        );
    }
    // And policy reaches at most as many ASes.
    assert!(policy.reachable_count() <= shortest.reachable_count());
}

#[test]
fn router_cache_is_shared_across_queries() {
    let topo = std::sync::Arc::new(Topology::generate(&TopologyConfig::small(), 408));
    let router = Router::new(std::sync::Arc::clone(&topo));
    let eyes = topo.eyeball_asns();
    for &src in eyes.iter().take(20) {
        let _ = router.as_path(src, eyes[0]);
    }
    assert_eq!(router.cached_tables(), 1, "one destination, one table");
}
