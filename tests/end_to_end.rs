//! End-to-end integration: world → campaign → analyses, checking
//! cross-crate invariants on the way.

use colo_shortcuts::core::analysis::improvement::ImprovementAnalysis;
use colo_shortcuts::core::analysis::stability::StabilityAnalysis;
use colo_shortcuts::core::analysis::symmetry::SymmetryAnalysis;
use colo_shortcuts::core::analysis::top_relays::TopRelayAnalysis;
use colo_shortcuts::core::analysis::voip::VoipAnalysis;
use colo_shortcuts::core::workflow::{Campaign, CampaignConfig, CampaignResults};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::core::RelayType;

fn run(seed: u64, rounds: u32) -> (World, CampaignResults) {
    let world = World::build(&WorldConfig::small(), seed);
    let mut cfg = CampaignConfig::small();
    cfg.rounds = rounds;
    let results = Campaign::new(&world, cfg).run();
    (world, results)
}

#[test]
fn campaign_and_all_analyses_run() {
    let (world, results) = run(100, 3);
    assert!(results.total_cases() > 500);

    let imp = ImprovementAnalysis::compute(&results);
    assert_eq!(imp.per_type.len(), 4);
    // COR is the best type — the paper's headline — even in a small
    // world.
    let cor = imp.for_type(RelayType::Cor).improved_fraction;
    for t in [RelayType::Plr, RelayType::RarEye] {
        assert!(
            cor > imp.for_type(t).improved_fraction,
            "COR ({cor}) should beat {t}"
        );
    }

    let top = TopRelayAnalysis::compute(&results, RelayType::Cor, 100);
    assert!(!top.ranked.is_empty());
    // Coverage is monotone and bounded by the type's improved fraction.
    let final_cov = top.coverage.last().copied().unwrap();
    assert!(final_cov <= cor + 1e-9);

    let voip = VoipAnalysis::compute(&results);
    assert!(voip.with_cor_over <= voip.direct_over);

    let stab = StabilityAnalysis::compute(&results, 2);
    assert!(!stab.direct_cvs.is_empty());

    let sym = SymmetryAnalysis::compute(&results);
    assert!(sym.samples > 0);

    // Table 1 wiring: every COR improving relay has facility metadata
    // resolvable against the world.
    for c in &results.cases {
        for &(host, _) in &c.outcome(RelayType::Cor).improving {
            let meta = results.relay_meta.get(&host).expect("meta");
            let f = meta.facility.expect("COR has facility");
            assert!(world.topo.facilities().len() > f.0 as usize);
        }
    }
}

#[test]
fn campaign_is_fully_deterministic() {
    let (_, r1) = run(200, 2);
    let (_, r2) = run(200, 2);
    assert_eq!(r1.total_cases(), r2.total_cases());
    assert_eq!(r1.pings_sent, r2.pings_sent);
    for (a, b) in r1.cases.iter().zip(r2.cases.iter()) {
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
        assert_eq!(a.direct_ms, b.direct_ms);
        for t in RelayType::ALL {
            assert_eq!(a.outcome(t).best, b.outcome(t).best);
        }
    }
}

#[test]
fn different_seeds_produce_different_campaigns() {
    let (_, r1) = run(300, 1);
    let (_, r2) = run(301, 1);
    // Different world seeds: different populations, different results.
    assert_ne!(r1.pings_sent, r2.pings_sent);
}

#[test]
fn improvements_never_exceed_direct_rtt() {
    let (_, results) = run(400, 2);
    for c in &results.cases {
        for t in RelayType::ALL {
            let out = c.outcome(t);
            if let Some((_, rtt)) = out.best {
                assert!(rtt > 0.0, "stitched RTT must be positive");
            }
            for &(_, imp) in &out.improving {
                assert!(imp > 0.0);
                assert!(
                    f64::from(imp) < c.direct_ms,
                    "improvement {imp} >= direct {}",
                    c.direct_ms
                );
            }
            // The best relay's improvement bounds every listed one.
            if let Some(best_delta) = out.best_improvement(c.direct_ms) {
                for &(_, imp) in &out.improving {
                    assert!(f64::from(imp) <= best_delta + 1e-3); // f32 storage rounding
                }
            }
        }
    }
}

#[test]
fn feasible_counts_bound_improving_counts() {
    let (_, results) = run(500, 2);
    for c in &results.cases {
        for t in RelayType::ALL {
            let out = c.outcome(t);
            assert!(out.improving.len() <= out.feasible as usize);
            if out.best.is_some() {
                assert!(out.feasible > 0);
            }
        }
    }
}

#[test]
fn more_rounds_accumulate_more_cases() {
    let (_, r1) = run(600, 1);
    let (_, r3) = run(600, 3);
    assert!(r3.total_cases() > r1.total_cases() * 2);
    // Histories deepen with rounds.
    let max_hist_1 = r1.direct_history.values().map(Vec::len).max().unwrap();
    let max_hist_3 = r3.direct_history.values().map(Vec::len).max().unwrap();
    assert!(max_hist_3 > max_hist_1);
}
