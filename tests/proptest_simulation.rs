//! Property-based tests over randomly seeded simulations: whatever the
//! seed, the structural invariants of the generated world and its
//! measurements must hold.

use colo_shortcuts::core::eyeball::{select_eyeballs, EndpointPool};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::netsim::clock::SimTime;
use colo_shortcuts::netsim::{LatencyModel, PingEngine};
use colo_shortcuts::topology::routing::Router;
use colo_shortcuts::topology::{AsType, Topology, TopologyConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // Topology generation is expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn any_seed_yields_a_sound_topology(seed in 0u64..10_000) {
        let topo = Topology::generate(&TopologyConfig::small(), seed);
        // Every non-tier-1 has a provider; every PoP belongs to its AS.
        for info in topo.ases() {
            if info.as_type != AsType::Tier1 {
                prop_assert!(!topo.adjacency(info.asn).providers.is_empty());
            }
            for &p in &info.pops {
                prop_assert_eq!(topo.pop(p).asn, info.asn);
            }
            prop_assert!(!info.prefixes.is_empty());
        }
        // Facility members have PoPs in the facility's city.
        for f in topo.facilities() {
            for &m in &f.members {
                prop_assert!(topo.pop_cities(m).contains(&f.city));
            }
        }
        // Adjacency is symmetric.
        for info in topo.ases() {
            let adj = topo.adjacency(info.asn);
            for &p in &adj.providers {
                prop_assert!(topo.adjacency(p).customers.contains(&info.asn));
            }
            for &q in &adj.peers {
                prop_assert!(topo.adjacency(q).peers.contains(&info.asn));
            }
        }
    }

    #[test]
    fn any_seed_pings_are_physical(seed in 0u64..10_000) {
        let topo = std::sync::Arc::new(Topology::generate(&TopologyConfig::small(), seed));
        let router = std::sync::Arc::new(Router::new(std::sync::Arc::clone(&topo)));
        let mut hosts = colo_shortcuts::netsim::HostRegistry::new();
        let eyes = topo.eyeball_asns();
        let a = hosts.add_host_in_as(&topo, eyes[0], None).expect("host");
        let b = hosts
            .add_host_in_as(&topo, eyes[eyes.len() / 2], None)
            .expect("host");
        let engine = PingEngine::new(
            std::sync::Arc::clone(&topo),
            router,
            std::sync::Arc::new(hosts),
            LatencyModel::default(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(base) = engine.base_rtt(a, b) {
            // Base is the floor of every observed sample.
            for i in 0..10 {
                if let Some(rtt) = engine.ping(a, b, SimTime(f64::from(i) * 60.0), &mut rng) {
                    prop_assert!(rtt >= base - 1e-9, "sample {rtt} under base {base}");
                    prop_assert!(rtt < base + 1000.0, "sample {rtt} absurdly high");
                }
            }
            // Symmetric base.
            prop_assert!((engine.base_rtt(b, a).expect("routable") - base).abs() < 1e-9);
        }
    }

    #[test]
    fn any_seed_endpoint_sampling_is_lawful(seed in 0u64..10_000) {
        let world = World::build(&WorldConfig::small(), seed);
        let sel = select_eyeballs(&world, 10.0);
        // Verified tuples really are eyeballs.
        for v in &sel.verified {
            prop_assert_eq!(world.topo.expect_as(v.asn).as_type, AsType::Eyeball);
        }
        let pool = EndpointPool::build(&world, &sel.verified);
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = pool.sample_round(&mut rng);
        // One endpoint per country, all from verified tuples.
        let mut seen = std::collections::HashSet::new();
        for p in &sample {
            prop_assert!(seen.insert(p.country));
            prop_assert!(sel
                .verified
                .iter()
                .any(|v| v.asn == p.asn && v.country == p.country));
        }
    }
}
