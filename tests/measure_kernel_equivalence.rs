//! The batched measurement kernel's equivalence contract:
//!
//! - [`PingEngine::resolve_pairs`] + `sample_window_block` is
//!   **bit-identical** to the scalar per-pair path (`sample_window`,
//!   which resolves through `pair_info`) over arbitrary pair sets —
//!   including duplicate pairs, unroutable pairs, budget-evicted
//!   cache shards and stale entries crossing churn epochs;
//! - a full campaign run on the batched default backend produces CSVs
//!   and ping counts **byte-identical** to the scalar oracle
//!   (`NetsimBackend::with_scalar_oracle(true)`) in every execution
//!   mode — the in-process counterpart of CI's process-wide
//!   `COLO_SCALAR_MEASURE=1` re-runs.

use colo_shortcuts::core::backend::{ExecMode, NetsimBackend};
use colo_shortcuts::core::report::cases_csv;
use colo_shortcuts::core::workflow::{Campaign, CampaignConfig, CampaignResults, CampaignSetup};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::netsim::clock::SimTime;
use colo_shortcuts::netsim::{
    FaultPlan, HostId, HostRegistry, LatencyModel, PingEngine, PingHandle,
};
use colo_shortcuts::topology::routing::Router;
use colo_shortcuts::topology::{Topology, TopologyConfig, TopologyDelta};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One private engine stack (topology, router, hosts, engine) with two
/// hosts per eyeball AS — so same-AS pairs exist — under an optional
/// pair-cache byte budget. Two stacks built from the same seed share
/// every world fact but no mutable state, which is what lets the
/// batched and scalar paths run side by side under churn (a shared
/// router would see each delta twice).
fn engine_stack(seed: u64, pair_budget: Option<u64>) -> (Arc<PingEngine>, Vec<HostId>) {
    let topo = Arc::new(Topology::generate(&TopologyConfig::small(), seed));
    let router = Arc::new(Router::new(Arc::clone(&topo)));
    let mut hosts = HostRegistry::new();
    let mut ids = Vec::new();
    for &asn in topo.eyeball_asns().iter().take(6) {
        for _ in 0..2 {
            ids.push(hosts.add_host_in_as(&topo, asn, None).expect("host"));
        }
    }
    let engine = Arc::new(PingEngine::with_budget(
        topo,
        router,
        Arc::new(hosts),
        LatencyModel::default(),
        pair_budget,
    ));
    (engine, ids)
}

/// A transit link of the stack's topology, for valid churn deltas.
fn transit_link(engine: &PingEngine) -> TopologyDelta {
    let topo = engine.topology();
    topo.ases()
        .iter()
        .find_map(|info| {
            topo.adjacency(info.asn)
                .customers
                .first()
                .map(|&c| TopologyDelta::LinkDown { a: info.asn, b: c })
        })
        .expect("small topology has a transit link")
}

/// Asserts one batch resolved by the batched kernel samples
/// bit-identically to the scalar path on a twin stack, window by
/// window, and that routability agrees with the scalar resolver.
fn assert_batch_matches_scalar(
    batched: &PingEngine,
    scalar: &PingEngine,
    pairs: &[(HostId, HostId)],
    rng_salt: u64,
) {
    let block = batched.resolve_pairs(pairs);
    let mut distinct = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for &p in pairs {
        if seen.insert(p) {
            distinct.push(p);
        }
    }
    assert_eq!(block.len(), distinct.len(), "one row per distinct pair");
    let mut got = Vec::new();
    let mut want = Vec::new();
    for (k, &(src, dst)) in distinct.iter().enumerate() {
        let slot = block.slot(src, dst).expect("batch pair has a slot");
        assert_eq!(
            block.is_routable(slot),
            scalar.as_path(src, dst).is_some(),
            "routability of {src:?}->{dst:?} disagrees with the scalar resolver"
        );
        let seed = rng_salt ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let start = SimTime((k as f64) * 1800.0);
        let mut rng = StdRng::seed_from_u64(seed);
        batched.sample_window_block(
            &block,
            slot,
            start,
            6,
            300.0,
            &FaultPlan::NONE,
            &mut rng,
            &mut got,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        scalar.sample_window(
            src,
            dst,
            start,
            6,
            300.0,
            &FaultPlan::NONE,
            &mut rng,
            &mut want,
        );
        assert_eq!(got.len(), want.len(), "reply count for {src:?}->{dst:?}");
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits(), "RTT bits for {src:?}->{dst:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random pair sets (with duplicates and self-pairs), random cache
    /// budgets tight enough to evict, and a churn epoch mid-sequence:
    /// the batched kernel must stay bit-identical to the scalar path
    /// through all of it.
    #[test]
    fn resolve_pairs_is_bit_identical_to_scalar_resolution(
        world_seed in 0u64..4,
        pair_picks in prop::collection::vec((0usize..12, 0usize..12), 1..40),
        tight_budget in prop::bool::ANY,
        churn in prop::bool::ANY,
        rng_salt in 0u64..u64::MAX,
    ) {
        // A tight budget forces clock-hand eviction between batches;
        // `None` keeps every entry cached. Both must be unobservable.
        let budget = if tight_budget { Some(2_048) } else { None };
        let (batched, hosts) = engine_stack(world_seed, budget);
        let (scalar, hosts_b) = engine_stack(world_seed, budget);
        prop_assert_eq!(&hosts, &hosts_b, "twin stacks must mint identical host IDs");

        let pairs: Vec<(HostId, HostId)> = pair_picks
            .iter()
            .map(|&(a, b)| (hosts[a % hosts.len()], hosts[b % hosts.len()]))
            .filter(|(a, b)| a != b)
            .collect();
        prop_assume!(!pairs.is_empty());

        assert_batch_matches_scalar(&batched, &scalar, &pairs, rng_salt);

        if churn {
            // The same delta on both (private) stacks: stale entries now
            // cross a dirty epoch, so the next batch exercises
            // revalidation and re-expansion — still bit-identically.
            let delta = transit_link(&batched);
            batched.apply_delta(std::slice::from_ref(&delta));
            scalar.apply_delta(std::slice::from_ref(&delta));
        }
        // Second round over the same pairs: warm hits (or evicted /
        // churned re-expansions) must agree just like cold misses.
        assert_batch_matches_scalar(&batched, &scalar, &pairs, rng_salt ^ 0xABCD);
    }
}

/// Runs a campaign through the *scalar oracle* backend — the exact
/// setup path of `Campaign::run`, with only the backend's measurement
/// strategy flipped.
fn scalar_oracle_run(world: &World, cfg: CampaignConfig) -> CampaignResults {
    let engine = world.shared().engine_budgeted(cfg.routing, cfg.memory);
    let handle = PingHandle::with_faults(Arc::clone(&engine), cfg.faults.clone());
    let setup = CampaignSetup::prepare(world, &handle, &cfg);
    engine.router().precompute(&setup.warmup());
    let backend = NetsimBackend::new(handle, cfg.window, cfg.seed).with_scalar_oracle(true);
    Campaign::new(world, cfg).run_rounds(
        &backend,
        &setup.endpoints,
        &setup.relays,
        setup.colo,
        |_| {},
    )
}

#[test]
fn campaign_csvs_are_byte_identical_to_the_scalar_oracle() {
    let world = World::build(&WorldConfig::small(), 77);
    for exec in [
        ExecMode::Serial,
        ExecMode::Parallel,
        ExecMode::Sharded {
            rounds_in_flight: 2,
        },
    ] {
        let mut cfg = CampaignConfig::small();
        cfg.rounds = 2;
        cfg.exec = exec;
        let batched = Campaign::new(&world, cfg.clone()).run();
        let scalar = scalar_oracle_run(&world, cfg);
        assert!(!batched.cases.is_empty());
        assert_eq!(
            cases_csv(&batched),
            cases_csv(&scalar),
            "batched vs scalar CSV under {exec:?}"
        );
        assert_eq!(batched.pings_sent, scalar.pings_sent, "{exec:?}");
        assert_eq!(
            batched.unresponsive_pairs, scalar.unresponsive_pairs,
            "{exec:?}"
        );
    }
}

#[test]
fn faulted_campaign_matches_the_scalar_oracle() {
    // Fault plans change the sampling loop's RNG skip pattern — the
    // subtlest place for the batched kernel to drift. Down an AS
    // mid-campaign wall-clock and add loss; bytes must still match.
    let world = World::build(&WorldConfig::small(), 77);
    let eye = world.topo.eyeball_asns()[0];
    let faults =
        FaultPlan::none()
            .with_lossy_as(eye, 0.3)
            .with_outage(eye, SimTime(0.0), SimTime(3600.0));
    let mut cfg = CampaignConfig::small();
    cfg.rounds = 2;
    cfg.faults = faults;
    let batched = Campaign::new(&world, cfg.clone()).run();
    let scalar = scalar_oracle_run(&world, cfg);
    assert!(!batched.cases.is_empty());
    assert_eq!(cases_csv(&batched), cases_csv(&scalar));
    assert_eq!(batched.pings_sent, scalar.pings_sent);
}
