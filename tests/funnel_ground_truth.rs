//! The §2.2 filter funnel against dataset ground truth: the pipeline
//! must keep exactly the records that deserve to survive.

use colo_shortcuts::core::colo::{run_pipeline, ColoPipelineConfig};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::datasets::GroundTruth;
use colo_shortcuts::netsim::clock::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn run_funnel(seed: u64) -> (World, colo_shortcuts::core::colo::ColoPool) {
    let world = World::build(&WorldConfig::small(), seed);
    let pool = {
        let engine = world.shared().engine(Default::default());
        let vantage = world.looking_glasses.lgs()[0].host;
        let mut rng = StdRng::seed_from_u64(seed);
        run_pipeline(
            &world,
            &*engine,
            vantage,
            SimTime(0.0),
            &ColoPipelineConfig::default(),
            &mut rng,
        )
    };
    (world, pool)
}

#[test]
fn no_dead_or_moved_ip_survives() {
    let (world, pool) = run_funnel(11);
    let kept: HashSet<_> = pool.relays.iter().map(|r| r.ip).collect();
    for rec in world.facility_dataset.records() {
        match rec.truth {
            GroundTruth::Dead => {
                assert!(!kept.contains(&rec.ip), "dead {} survived", rec.ip)
            }
            GroundTruth::AliveElsewhere { .. } => {
                assert!(!kept.contains(&rec.ip), "moved {} survived", rec.ip)
            }
            GroundTruth::AliveAtFacility { .. } => {}
        }
    }
}

#[test]
fn survivors_have_consistent_ownership_and_location() {
    let (world, pool) = run_funnel(12);
    for relay in &pool.relays {
        // Ownership: prefix2as agrees, single origin.
        assert!(world.prefix2as.owned_solely_by(relay.ip, relay.asn));
        // Membership: AS still in the facility.
        assert!(world
            .peeringdb
            .is_member(&world.topo, relay.facility, relay.asn));
        // Location: host city equals facility city.
        let host = world.hosts.get(relay.host);
        assert_eq!(host.city, relay.city);
        assert_eq!(world.topo.facility(relay.facility).city, relay.city);
    }
}

#[test]
fn funnel_recall_is_reasonable() {
    // Of the records that SHOULD survive (alive at a single real
    // facility, ownership intact), a decent share must make it through
    // — the filters are meant to remove staleness, not decimate truth.
    let (world, pool) = run_funnel(13);
    let kept: HashSet<_> = pool.relays.iter().map(|r| r.ip).collect();
    let mut eligible = 0usize;
    let mut recovered = 0usize;
    for rec in world.facility_dataset.records() {
        let GroundTruth::AliveAtFacility { .. } = rec.truth else {
            continue;
        };
        let Some(f) = rec.single_candidate() else {
            continue;
        };
        if !world.peeringdb.has_facility(f) {
            continue;
        }
        if !world.prefix2as.owned_solely_by(rec.ip, rec.recorded_asn) {
            continue;
        }
        if !world.peeringdb.is_member(&world.topo, f, rec.recorded_asn) {
            continue;
        }
        eligible += 1;
        if kept.contains(&rec.ip) {
            recovered += 1;
        }
    }
    assert!(eligible > 10, "test needs eligible records, got {eligible}");
    let recall = recovered as f64 / eligible as f64;
    // Losses here come only from Periscope coverage gaps and borderline
    // geolocation RTTs (the paper's harshest filter too).
    assert!(recall > 0.4, "recall {recall} ({recovered}/{eligible})");
}

#[test]
fn funnel_shape_is_stable_across_seeds() {
    for seed in [21u64, 22, 23] {
        let (_, pool) = run_funnel(seed);
        let rates = pool.funnel.pass_rates();
        // Stage order never inverts and nothing goes to zero.
        assert!(rates.iter().all(|&r| r > 0.0 && r <= 1.0), "{rates:?}");
        assert!(pool.funnel.geolocated > 0);
    }
}
