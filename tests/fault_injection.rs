//! Fault injection across the stack: outages and lossy transit must
//! degrade measurements without breaking the pipeline.

use colo_shortcuts::core::measure::{measure_pair, WindowConfig};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::netsim::clock::SimTime;
use colo_shortcuts::netsim::{FaultPlan, PingEngine};
use colo_shortcuts::topology::routing::Router;
use colo_shortcuts::topology::AsType;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tier1_outage_blacks_out_dependent_pairs() {
    let world = World::build(&WorldConfig::small(), 42);
    let router = Router::new(&world.topo);
    let mut engine = PingEngine::new(&world.topo, &router, &world.hosts, world.latency.clone());

    // Find an eyeball pair routed through some tier-1.
    let probes = world.ripe.probes();
    let mut rng = StdRng::seed_from_u64(7);
    let mut victim_pair = None;
    'outer: for a in probes.iter().take(60) {
        for b in probes.iter().rev().take(60) {
            if a.host == b.host {
                continue;
            }
            if let Some(path) = engine.as_path(a.host, b.host) {
                if let Some(&transit) = path
                    .iter()
                    .find(|&&asn| world.topo.expect_as(asn).as_type == AsType::Tier1)
                {
                    victim_pair = Some((a.host, b.host, transit));
                    break 'outer;
                }
            }
        }
    }
    let (src, dst, transit) = victim_pair.expect("some pair crosses a tier-1");

    // Sanity: works before the outage.
    let w = WindowConfig::default();
    assert!(measure_pair(&engine, src, dst, SimTime(0.0), &w, &mut rng).is_some());

    // Outage covering a whole measurement window.
    engine.set_faults(FaultPlan::none().with_outage(
        transit,
        SimTime(10_000.0),
        SimTime(10_000.0 + 3_600.0),
    ));
    assert!(
        measure_pair(&engine, src, dst, SimTime(10_000.0), &w, &mut rng).is_none(),
        "window inside the outage must fail"
    );
    // After the outage everything recovers.
    assert!(measure_pair(&engine, src, dst, SimTime(20_000.0), &w, &mut rng).is_some());
}

#[test]
fn lossy_as_degrades_but_median_still_works() {
    let world = World::build(&WorldConfig::small(), 43);
    let router = Router::new(&world.topo);
    let mut engine = PingEngine::new(&world.topo, &router, &world.hosts, world.latency.clone());
    let probes = world.ripe.probes();
    let (src, dst) = (probes[0].host, probes[probes.len() / 2].host);
    let path = engine.as_path(src, dst).expect("routable");

    // 30% extra loss on the first AS: with 6 pings and min_valid 3, the
    // window usually still yields a median.
    engine.set_faults(FaultPlan::none().with_lossy_as(path[0], 0.3));
    let w = WindowConfig::default();
    let mut rng = StdRng::seed_from_u64(9);
    let ok = (0..30)
        .filter(|i| {
            measure_pair(
                &engine,
                src,
                dst,
                SimTime(f64::from(*i) * 3600.0),
                &w,
                &mut rng,
            )
            .is_some()
        })
        .count();
    assert!(ok >= 20, "medians should survive 30% loss, got {ok}/30");

    // 95% loss: the window collapses.
    engine.set_faults(FaultPlan::none().with_lossy_as(path[0], 0.95));
    let ok = (0..30)
        .filter(|i| {
            measure_pair(
                &engine,
                src,
                dst,
                SimTime(f64::from(*i) * 3600.0),
                &w,
                &mut rng,
            )
            .is_some()
        })
        .count();
    assert!(ok <= 5, "95% loss should kill most windows, got {ok}/30");
}

#[test]
fn engine_stats_account_for_faults() {
    let world = World::build(&WorldConfig::small(), 44);
    let router = Router::new(&world.topo);
    let mut engine = PingEngine::new(&world.topo, &router, &world.hosts, world.latency.clone());
    let probes = world.ripe.probes();
    let (src, dst) = (probes[0].host, probes[1].host);
    let path = engine.as_path(src, dst).expect("routable");
    engine.set_faults(FaultPlan::none().with_outage(path[0], SimTime(0.0), SimTime(1e9)));
    let mut rng = StdRng::seed_from_u64(1);
    for i in 0..10 {
        assert!(engine
            .ping(src, dst, SimTime(f64::from(i)), &mut rng)
            .is_none());
    }
    let stats = engine.stats();
    assert_eq!(stats.attempts, 10);
    assert_eq!(stats.losses, 10);
    assert_eq!(stats.replies, 0);
}
