//! Fault injection across the stack: outages and lossy transit must
//! degrade measurements without breaking the pipeline.
//!
//! Faults are per-campaign state: they ride on a [`PingHandle`] (and,
//! at the campaign level, on `CampaignConfig::faults`), never on the
//! shared engine — so installing a plan needs no `&mut` access to the
//! engine and campaigns sharing one engine see only their own faults.

use colo_shortcuts::core::measure::{measure_pair, WindowConfig};
use colo_shortcuts::core::workflow::{Campaign, CampaignConfig};
use colo_shortcuts::core::world::{World, WorldConfig};
use colo_shortcuts::netsim::clock::SimTime;
use colo_shortcuts::netsim::{FaultPlan, PingHandle, Pinger};
use colo_shortcuts::topology::AsType;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tier1_outage_blacks_out_dependent_pairs() {
    let world = World::build(&WorldConfig::small(), 42);
    let engine = world.shared().engine(Default::default());
    let mut handle = PingHandle::new(engine);

    // Find an eyeball pair routed through some tier-1.
    let probes = world.ripe.probes();
    let mut rng = StdRng::seed_from_u64(7);
    let mut victim_pair = None;
    'outer: for a in probes.iter().take(60) {
        for b in probes.iter().rev().take(60) {
            if a.host == b.host {
                continue;
            }
            if let Some(path) = handle.as_path(a.host, b.host) {
                if let Some(&transit) = path
                    .iter()
                    .find(|&&asn| world.topo.expect_as(asn).as_type == AsType::Tier1)
                {
                    victim_pair = Some((a.host, b.host, transit));
                    break 'outer;
                }
            }
        }
    }
    let (src, dst, transit) = victim_pair.expect("some pair crosses a tier-1");

    // Sanity: works before the outage.
    let w = WindowConfig::default();
    assert!(measure_pair(&handle, src, dst, SimTime(0.0), &w, &mut rng).is_some());

    // Outage covering a whole measurement window.
    handle.set_faults(FaultPlan::none().with_outage(
        transit,
        SimTime(10_000.0),
        SimTime(10_000.0 + 3_600.0),
    ));
    assert!(
        measure_pair(&handle, src, dst, SimTime(10_000.0), &w, &mut rng).is_none(),
        "window inside the outage must fail"
    );
    // After the outage everything recovers.
    assert!(measure_pair(&handle, src, dst, SimTime(20_000.0), &w, &mut rng).is_some());
}

#[test]
fn lossy_as_degrades_but_median_still_works() {
    let world = World::build(&WorldConfig::small(), 43);
    let engine = world.shared().engine(Default::default());
    let mut handle = PingHandle::new(engine);
    let probes = world.ripe.probes();
    let (src, dst) = (probes[0].host, probes[probes.len() / 2].host);
    let path = handle.as_path(src, dst).expect("routable");

    // 30% extra loss on the first AS: with 6 pings and min_valid 3, the
    // window usually still yields a median.
    handle.set_faults(FaultPlan::none().with_lossy_as(path[0], 0.3));
    let w = WindowConfig::default();
    let mut rng = StdRng::seed_from_u64(9);
    let ok = (0..30)
        .filter(|i| {
            measure_pair(
                &handle,
                src,
                dst,
                SimTime(f64::from(*i) * 3600.0),
                &w,
                &mut rng,
            )
            .is_some()
        })
        .count();
    assert!(ok >= 20, "medians should survive 30% loss, got {ok}/30");

    // 95% loss: the window collapses.
    handle.set_faults(FaultPlan::none().with_lossy_as(path[0], 0.95));
    let ok = (0..30)
        .filter(|i| {
            measure_pair(
                &handle,
                src,
                dst,
                SimTime(f64::from(*i) * 3600.0),
                &w,
                &mut rng,
            )
            .is_some()
        })
        .count();
    assert!(ok <= 5, "95% loss should kill most windows, got {ok}/30");
}

#[test]
fn engine_stats_account_for_faults() {
    let world = World::build(&WorldConfig::small(), 44);
    let engine = world.shared().engine(Default::default());
    let probes = world.ripe.probes();
    let (src, dst) = (probes[0].host, probes[1].host);
    let path = engine.as_path(src, dst).expect("routable");
    let handle = PingHandle::with_faults(
        std::sync::Arc::clone(&engine),
        FaultPlan::none().with_outage(path[0], SimTime(0.0), SimTime(1e9)),
    );
    let mut rng = StdRng::seed_from_u64(1);
    for i in 0..10 {
        assert!(handle
            .ping(src, dst, SimTime(f64::from(i)), &mut rng)
            .is_none());
    }
    // The handle counts its own attempts; the shared engine's global
    // stats classify them as losses.
    assert_eq!(handle.pings_sent(), 10);
    let stats = engine.stats();
    assert_eq!(stats.attempts, 10);
    assert_eq!(stats.losses, 10);
    assert_eq!(stats.replies, 0);
}

#[test]
fn campaign_level_faults_flow_through_the_config() {
    // A whole-campaign outage of a tier-1 must measurably degrade the
    // campaign vs. the identical fault-free configuration — proving
    // `CampaignConfig::faults` reaches the measurement hot path.
    let world = World::build(&WorldConfig::small(), 45);
    let mut clean_cfg = CampaignConfig::small();
    clean_cfg.rounds = 1;
    let clean = Campaign::new(&world, clean_cfg.clone()).run();

    let tier1 = world.topo.asns_of_type(AsType::Tier1)[0];
    let mut faulty_cfg = clean_cfg;
    faulty_cfg.faults = FaultPlan::none().with_outage(tier1, SimTime(0.0), SimTime(1e12));
    let faulty = Campaign::new(&world, faulty_cfg).run();

    assert!(
        faulty.unresponsive_pairs > clean.unresponsive_pairs,
        "blacking out a tier-1 should lose pairs ({} vs {})",
        faulty.unresponsive_pairs,
        clean.unresponsive_pairs
    );
}
