//! `colo-shortcuts` — command-line front end for the reproduction.
//!
//! ```text
//! colo-shortcuts world-info [--seed S]
//! colo-shortcuts funnel     [--seed S]
//! colo-shortcuts campaign   [--seed S] [--world-seed W] [--rounds N]
//!                           [--out DIR] [--serial | --rounds-in-flight N]
//!                           [--memory-budget B] [--churn SPEC]
//!                           [--metrics-out PATH] [--trace-out PATH]
//! colo-shortcuts sweep      [--seed S] [--seeds S1,S2,..] [--rounds N]
//!                           [--jobs-in-flight N] [--out DIR]
//!                           [--memory-budget B] [--churn SPEC]
//!                           [--metrics-out PATH] [--trace-out PATH]
//! colo-shortcuts serve      [--addr A] [--max-sessions N]
//!                           [--world-scale small|paper] [--seed S]
//!                           [--memory-budget B] [--credits CAP]
//!                           [--credit-refill PER_SEC]
//!                           [--subscriber-lag N]
//! colo-shortcuts client     --addr A [--stats] [--metrics]
//!                           [--seed S | --seeds ..]
//!                           [--rounds N] [--world-seed W] [--out DIR]
//!                           [--subscribe] [--framing text|binary]
//!                           [--retries N]
//! ```
//!
//! `campaign` runs the paper's measurement campaign — streaming a
//! progress line per completed round — and writes the figure-ready
//! CSVs (`cases.csv`, `improvement.csv`, `top_relays.csv`,
//! `threshold.csv`, `funnel.csv`) into `--out` (default `./out`).
//! `--rounds-in-flight N` selects the round-sharded pipeline (N rounds
//! measured concurrently); `--serial` forces one window at a time; the
//! default is per-round parallel. All three produce bit-identical
//! results for the same seed.
//!
//! `sweep` runs one campaign **per seed in `--seeds`** concurrently on
//! one world — built from `--seed` — sharing router tables, the pair
//! cache and one worker pool, streaming a progress line per completed
//! `(scenario, round)`. It writes `cases_<label>.csv` per scenario —
//! byte-identical to a solo `campaign --seed <s> --world-seed W` run
//! on the same world (`W` being the sweep's `--seed`) — plus a
//! cross-scenario `sweep.csv` comparison table of improvement rates.
//! Duplicate `--seeds` are an error (their output files would
//! overwrite each other), and the run ends with an engine-health
//! summary line (pair-cache hit rate, resident routing tables, pings).
//!
//! `--memory-budget B` (bytes, with binary `K`/`M`/`G` suffixes, or
//! `unbounded`) caps the run's cache residency: the router's
//! destination-table cache and the pair cache evict under the budget
//! and transparently recompute on re-touch — results are
//! **byte-identical** to an unbounded run, only peak memory and
//! throughput change. Budgets too small to hold even a couple of
//! routing tables (or one pair entry per cache shard) are rejected
//! up front with the minimum workable size. On `serve` the budget
//! additionally bounds the world pool itself: idle engine stacks are
//! evicted whole, least-recently-used first.
//!
//! `--churn SPEC` injects topology churn between measurement rounds:
//! a comma-separated list of `<event>@[round]<N>` entries, e.g.
//! `link-down:AS1-AS2@round3,as-down:AS5@7`. Events are `link-down`,
//! `link-up`, `as-down`, `as-up`. Routing tables are repaired
//! incrementally (not recomputed from scratch) and only cached pairs
//! whose paths cross a dirty link are re-measured; an empty or absent
//! spec is byte-identical to today's churn-free runs. On `sweep` the
//! schedule is sweep-level: all scenarios share one world, so churn
//! hits every scenario at the same absolute round.
//!
//! `serve` turns the same machinery into a long-lived measurement
//! service ([`shortcuts_service`]): clients connect over TCP, submit
//! `RUN`/`SWEEP`/`SUBSCRIBE` requests, stream per-round progress and
//! fetch the final CSVs — sessions touching the same world share one
//! warmed engine stack, and identical batches execute once and fan
//! out. Work admission is credit-based (`--credits` bucket capacity,
//! `--credit-refill` per second, per client IP; cost =
//! rounds × scenarios); `--subscriber-lag` bounds how far a broadcast
//! subscriber may fall behind before it is shed with `ERR lagged`.
//!
//! Observability: `--metrics-out PATH` (on `campaign` and `sweep`)
//! enables telemetry and writes a Prometheus-style exposition of the
//! run's metrics — per-stage latency histograms, scheduler gauges and
//! the engine's cache counters — once the run finishes; `--trace-out
//! PATH` additionally records every pipeline span and dumps a
//! chrome://tracing-compatible JSON file (open it at
//! `chrome://tracing` or <https://ui.perfetto.dev>). Telemetry
//! observes durations only — output CSVs are byte-identical with it
//! on or off. Against a running server, `client --metrics` fetches
//! the same exposition live over the `METRICS` verb.
//!
//! `client` is the matching scripting front end: `--subscribe` sends
//! `SUBSCRIBE` instead of `RUN`/`SWEEP` (attaching to an identical
//! in-flight batch when one exists), `--framing binary` negotiates
//! length-prefixed binary response frames, and `--retries N` retries
//! `ERR busy`/`ERR credits` refusals with jittered exponential backoff
//! honoring the server's `retry-after-ms` hint.

use shortcuts_core::analysis::improvement::ImprovementAnalysis;
use shortcuts_core::analysis::threshold::ThresholdCurve;
use shortcuts_core::analysis::top_relays::TopRelayAnalysis;
use shortcuts_core::report;
use shortcuts_core::sweep::{Sweep, SweepConfig};
use shortcuts_core::workflow::{Campaign, CampaignConfig};
use shortcuts_core::world::{World, WorldConfig};
use shortcuts_core::RelayType;
use shortcuts_service::{Client, Framing, RetryPolicy, Server, ServiceConfig, StreamEvent};
use shortcuts_topology::routing::table_approx_bytes;
use shortcuts_topology::{ChurnSchedule, MemoryBudget};
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    seed: u64,
    world_seed: Option<u64>,
    seeds: Vec<u64>,
    rounds: u32,
    out: PathBuf,
    serial: bool,
    rounds_in_flight: Option<usize>,
    jobs_in_flight: usize,
    addr: String,
    max_sessions: usize,
    world_scale: String,
    stats: bool,
    memory_budget: MemoryBudget,
    churn: ChurnSchedule,
    subscribe: bool,
    framing: Framing,
    retries: u32,
    credits: Option<f64>,
    credit_refill: Option<f64>,
    subscriber_lag: Option<usize>,
    metrics: bool,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn parse_args(mut argv: std::env::Args) -> (String, Args) {
    let _bin = argv.next();
    let cmd = argv.next().unwrap_or_else(|| "help".to_string());
    let mut args = Args {
        seed: 2017,
        world_seed: None,
        seeds: Vec::new(),
        rounds: 8,
        out: PathBuf::from("out"),
        serial: false,
        rounds_in_flight: None,
        jobs_in_flight: 8,
        addr: "127.0.0.1:4617".to_string(),
        max_sessions: 8,
        world_scale: "paper".to_string(),
        stats: false,
        memory_budget: MemoryBudget::unbounded(),
        churn: ChurnSchedule::none(),
        subscribe: false,
        framing: Framing::Text,
        retries: 0,
        credits: None,
        credit_refill: None,
        subscriber_lag: None,
        metrics: false,
        metrics_out: None,
        trace_out: None,
    };
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        let need_value = |i: usize| -> &str {
            rest.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", rest[i]);
                    std::process::exit(2);
                })
                .as_str()
        };
        match rest[i].as_str() {
            "--seed" => {
                args.seed = need_value(i).parse().expect("--seed takes a u64");
                i += 2;
            }
            "--world-seed" => {
                args.world_seed = Some(need_value(i).parse().expect("--world-seed takes a u64"));
                i += 2;
            }
            "--seeds" => {
                args.seeds = need_value(i)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--seeds takes u64,u64,..."))
                    .collect();
                i += 2;
            }
            "--jobs-in-flight" => {
                args.jobs_in_flight = need_value(i)
                    .parse()
                    .expect("--jobs-in-flight takes a usize");
                i += 2;
            }
            "--rounds" => {
                args.rounds = need_value(i).parse().expect("--rounds takes a u32");
                i += 2;
            }
            "--out" => {
                args.out = PathBuf::from(need_value(i));
                i += 2;
            }
            "--serial" => {
                args.serial = true;
                i += 1;
            }
            "--addr" => {
                args.addr = need_value(i).to_string();
                i += 2;
            }
            "--max-sessions" => {
                args.max_sessions = need_value(i).parse().expect("--max-sessions takes a usize");
                i += 2;
            }
            "--world-scale" => {
                args.world_scale = need_value(i).to_string();
                i += 2;
            }
            "--stats" => {
                args.stats = true;
                i += 1;
            }
            "--metrics" => {
                args.metrics = true;
                i += 1;
            }
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(need_value(i)));
                i += 2;
            }
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(need_value(i)));
                i += 2;
            }
            "--memory-budget" => {
                args.memory_budget = MemoryBudget::parse(need_value(i)).unwrap_or_else(|msg| {
                    eprintln!("--memory-budget: {msg}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--churn" => {
                args.churn = ChurnSchedule::parse(need_value(i)).unwrap_or_else(|msg| {
                    eprintln!("--churn: {msg}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--subscribe" => {
                args.subscribe = true;
                i += 1;
            }
            "--framing" => {
                args.framing = Framing::parse(need_value(i)).unwrap_or_else(|| {
                    eprintln!("--framing takes `text` or `binary`");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--retries" => {
                args.retries = need_value(i).parse().expect("--retries takes a u32");
                i += 2;
            }
            "--credits" => {
                args.credits = Some(need_value(i).parse().expect("--credits takes a number"));
                i += 2;
            }
            "--credit-refill" => {
                args.credit_refill = Some(
                    need_value(i)
                        .parse()
                        .expect("--credit-refill takes a number"),
                );
                i += 2;
            }
            "--subscriber-lag" => {
                args.subscriber_lag = Some(
                    need_value(i)
                        .parse()
                        .expect("--subscriber-lag takes a usize"),
                );
                i += 2;
            }
            "--rounds-in-flight" => {
                args.rounds_in_flight = Some(
                    need_value(i)
                        .parse()
                        .expect("--rounds-in-flight takes a usize"),
                );
                i += 2;
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.serial && args.rounds_in_flight.is_some() {
        eprintln!("--serial and --rounds-in-flight are mutually exclusive");
        std::process::exit(2);
    }
    (cmd, args)
}

fn main() {
    let (cmd, args) = parse_args(std::env::args());
    match cmd.as_str() {
        "world-info" => world_info(&args),
        "funnel" => funnel(&args),
        "campaign" => campaign(&args),
        "sweep" => sweep(&args),
        "serve" => serve(&args),
        "client" => client(&args),
        _ => {
            eprintln!(
                "usage: colo-shortcuts <world-info|funnel|campaign|sweep|serve|client> \
                 [--seed S] [--seeds S1,S2,..] [--rounds N] [--out DIR] \
                 [--serial | --rounds-in-flight N] [--jobs-in-flight N] \
                 [--addr HOST:PORT] [--max-sessions N] [--world-scale small|paper] [--stats] \
                 [--memory-budget BYTES|K|M|G|unbounded] [--churn SPEC] \
                 [--subscribe] [--framing text|binary] [--retries N] \
                 [--credits CAP] [--credit-refill PER_SEC] [--subscriber-lag N] \
                 [--metrics] [--metrics-out PATH] [--trace-out PATH]"
            );
            std::process::exit(2);
        }
    }
}

fn build(args: &Args) -> World {
    // The world seed defaults to the campaign seed but can be pinned
    // independently (--world-seed), e.g. to compare several campaign
    // seeds on one world the way `sweep` does.
    let seed = args.world_seed.unwrap_or(args.seed);
    eprintln!("building world (seed {seed}) ...");
    World::build(&WorldConfig::paper_scale(), seed)
}

/// Rejects a `--memory-budget` this world cannot run under — a router
/// share below a couple of routing tables, or a pair share below one
/// entry per cache shard — before any measurement starts. The error
/// names the minimum workable budget.
fn check_budget(budget: MemoryBudget, world: &World) {
    if let Err(msg) = budget.ensure_fits(
        table_approx_bytes(world.topo.node_index().len()),
        2,
        shortcuts_netsim::ping::pair_entry_min_bytes(),
        shortcuts_netsim::ping::CACHE_SHARDS as u64,
    ) {
        eprintln!("--memory-budget: {msg}");
        std::process::exit(2);
    }
}

fn world_info(args: &Args) {
    let w = build(args);
    println!("seed:        {}", w.seed);
    println!("ASes:        {}", w.topo.as_count());
    println!("links:       {}", w.topo.link_count());
    println!("facilities:  {}", w.topo.facilities().len());
    println!("IXPs:        {}", w.topo.ixps().len());
    println!("hosts:       {}", w.hosts.len());
    println!("RA probes:   {}", w.ripe.probes().len());
    println!("PL nodes:    {}", w.planetlab.nodes().len());
    println!(
        "LGs:         {} in {} cities",
        w.looking_glasses.lgs().len(),
        w.looking_glasses.city_count()
    );
    println!("facility-dataset records: {}", w.facility_dataset.len());
}

fn funnel(args: &Args) {
    use rand::SeedableRng;
    use shortcuts_core::colo::{run_pipeline, ColoPipelineConfig};
    use shortcuts_netsim::clock::SimTime;
    let w = build(args);
    let engine = w.shared().engine(Default::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
    let pool = run_pipeline(
        &w,
        &*engine,
        w.looking_glasses.lgs()[0].host,
        SimTime(0.0),
        &ColoPipelineConfig::default(),
        &mut rng,
    );
    print!("{}", report::funnel_csv(&pool.funnel));
}

/// Rejects a `--churn` schedule naming ASes or links the built world
/// does not have, before any measurement starts.
fn check_churn(churn: &ChurnSchedule, world: &World) {
    if let Err(msg) = churn.validate(&world.topo) {
        eprintln!("--churn: {msg}");
        std::process::exit(2);
    }
}

/// Turns telemetry on for this process when `--metrics-out` or
/// `--trace-out` asked for it. Must run before any measurement so the
/// stage spans actually record.
fn telemetry_setup(args: &Args) {
    if args.metrics_out.is_some() || args.trace_out.is_some() {
        shortcuts_telemetry::global().set_enabled(true);
    }
    if args.trace_out.is_some() {
        shortcuts_telemetry::global().start_trace();
    }
}

/// Writes the `--metrics-out` exposition (global registry plus the
/// run's engine counters) and the `--trace-out` chrome-trace JSON.
fn telemetry_finish(args: &Args, engine: &shortcuts_netsim::PingEngine, world_seed: u64) {
    if let Some(path) = &args.metrics_out {
        let mut out = String::new();
        let tele = shortcuts_telemetry::global();
        tele.render_into(&mut out);
        let world = world_seed.to_string();
        shortcuts_telemetry::prom_fields(
            &mut out,
            "colo_engine",
            &[
                ("world", world.as_str()),
                ("policy", engine.router().policy().label()),
            ],
            &engine.engine_stats().fields(),
        );
        std::fs::write(path, out).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &args.trace_out {
        let json = shortcuts_telemetry::global().finish_trace_json();
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        eprintln!("wrote {}", path.display());
    }
}

fn campaign(args: &Args) {
    telemetry_setup(args);
    let w = build(args);
    check_budget(args.memory_budget, &w);
    check_churn(&args.churn, &w);
    let mut cfg = CampaignConfig::paper();
    cfg.rounds = args.rounds;
    cfg.seed = args.seed;
    cfg.memory = args.memory_budget;
    cfg.churn = args.churn.clone();
    let mode = if args.serial {
        cfg.exec = shortcuts_core::ExecMode::Serial;
        "serial".to_string()
    } else if let Some(n) = args.rounds_in_flight {
        cfg.exec = shortcuts_core::ExecMode::Sharded {
            rounds_in_flight: n,
        };
        format!("sharded, {n} rounds in flight")
    } else {
        "parallel".to_string()
    };
    eprintln!("running {} rounds ({mode}) ...", cfg.rounds);
    // Build the engine explicitly (exactly what run_streaming would do)
    // so its cache counters can feed --metrics-out after the run.
    let engine = w.shared().engine_budgeted(cfg.routing, cfg.memory);
    // Stream per-round progress: summaries arrive in round order as
    // rounds complete, long before the campaign finishes.
    let results = Campaign::new(&w, cfg).run_streaming_on(&engine, |s| {
        eprintln!(
            "round {:>3}: {} endpoints, {} cases ({} unresponsive), \
             {} of {} links, {} symmetry samples",
            s.round,
            s.endpoints,
            s.cases,
            s.unresponsive_pairs,
            s.links_measured,
            s.links_planned,
            s.symmetry_samples,
        );
    });
    eprintln!(
        "{} cases, {:.2} M pings",
        results.total_cases(),
        results.pings_sent as f64 / 1e6
    );

    std::fs::create_dir_all(&args.out).expect("create --out directory");
    let write = |name: &str, contents: String| {
        let path = args.out.join(name);
        std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        eprintln!("wrote {}", path.display());
    };

    write("cases.csv", report::cases_csv(&results));
    let imp = ImprovementAnalysis::compute(&results);
    write("improvement.csv", report::improvement_csv(&imp));
    let tops: Vec<TopRelayAnalysis> = RelayType::ALL
        .iter()
        .map(|&t| TopRelayAnalysis::compute(&results, t, 200))
        .collect();
    write("top_relays.csv", report::top_relays_csv(&tops));
    let xs: Vec<f64> = (0..=20).map(|i| f64::from(i) * 5.0).collect();
    let mut curves = Vec::new();
    for t in RelayType::ALL {
        curves.push(ThresholdCurve::compute(&results, t, Some(10), &xs));
        curves.push(ThresholdCurve::compute(&results, t, None, &xs));
    }
    write("threshold.csv", report::threshold_csv(&curves));
    write("funnel.csv", report::funnel_csv(&results.colo_pool.funnel));
    telemetry_finish(args, &engine, w.seed);
}

fn sweep(args: &Args) {
    telemetry_setup(args);
    let seeds: Vec<u64> = if args.seeds.is_empty() {
        // Default: four seeds starting at --seed.
        (args.seed..args.seed + 4).collect()
    } else {
        args.seeds.clone()
    };
    // Scenario labels (and output file names) derive from the seed, so
    // a duplicate would silently overwrite another scenario's CSV.
    // Reject it outright — before paying for the world build — rather
    // than guessing which one was meant.
    let mut seen = std::collections::HashSet::new();
    for s in &seeds {
        if !seen.insert(*s) {
            eprintln!("duplicate seed {s} in --seeds: each scenario writes cases_seed-{s}.csv");
            std::process::exit(2);
        }
    }
    let w = Arc::new(build(args));
    check_budget(args.memory_budget, &w);
    check_churn(&args.churn, &w);
    let mut base = CampaignConfig::paper();
    base.rounds = args.rounds;
    base.memory = args.memory_budget;
    // from_seeds lifts the base schedule to sweep level: scenarios
    // share one world, so churn hits them at the same absolute round.
    base.churn = args.churn.clone();
    let mut cfg = SweepConfig::from_seeds(&base, seeds);
    cfg.jobs_in_flight = args.jobs_in_flight;
    let labels: Vec<String> = cfg.scenarios.iter().map(|s| s.label.clone()).collect();
    eprintln!(
        "sweeping {} scenarios x {} rounds ({} jobs in flight, shared world) ...",
        cfg.scenarios.len(),
        args.rounds,
        cfg.jobs_in_flight,
    );
    // Build the shared engine stack explicitly so its health counters
    // can be reported once the sweep is done. Under --memory-budget it
    // comes cache-bounded; results are byte-identical either way.
    let engine = w.shared().engine_budgeted(base.routing, base.memory);
    // One line per completed (scenario, round): each scenario streams
    // in round order while the others are still measuring.
    let outcome = Sweep::with_engine(Arc::clone(&w), Arc::clone(&engine), cfg).run_streaming(
        |scenario, s| {
            eprintln!(
                "{:>10} round {:>3}: {} endpoints, {} cases ({} unresponsive), \
             {} of {} links",
                labels[scenario],
                s.round,
                s.endpoints,
                s.cases,
                s.unresponsive_pairs,
                s.links_measured,
                s.links_planned,
            );
        },
    );

    std::fs::create_dir_all(&args.out).expect("create --out directory");
    let write = |name: &str, contents: String| {
        let path = args.out.join(name);
        std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        eprintln!("wrote {}", path.display());
    };
    for sc in &outcome.scenarios {
        eprintln!(
            "{:>10}: {} cases, {:.2} M pings",
            sc.label,
            sc.results.total_cases(),
            sc.results.pings_sent as f64 / 1e6
        );
        write(
            &format!("cases_{}.csv", sc.label),
            report::cases_csv(&sc.results),
        );
    }
    write("sweep.csv", outcome.comparison_csv());
    eprintln!(
        "engine: {} memory_budget={}",
        engine.engine_stats().summary(),
        args.memory_budget,
    );
    telemetry_finish(args, &engine, w.seed);
}

fn serve(args: &Args) {
    let mut cfg = match args.world_scale.as_str() {
        "paper" => ServiceConfig::paper_scale(),
        "small" => ServiceConfig::small(),
        other => {
            eprintln!("--world-scale takes `small` or `paper`, got {other:?}");
            std::process::exit(2);
        }
    };
    cfg.max_sessions = args.max_sessions;
    cfg.default_world_seed = args.world_seed.unwrap_or(args.seed);
    cfg.memory = args.memory_budget;
    if let Some(cap) = args.credits {
        cfg.credits.capacity = cap;
    }
    if let Some(rate) = args.credit_refill {
        cfg.credits.refill_per_sec = rate;
    }
    if let Some(lag) = args.subscriber_lag {
        cfg.subscriber_lag = lag;
    }
    let credits = cfg.credits;
    // Worlds are built lazily per requested seed, so the exact table
    // size is unknown here — still reject budgets whose pair share
    // cannot hold one entry per cache shard.
    if let Err(msg) = args.memory_budget.ensure_fits(
        0,
        0,
        shortcuts_netsim::ping::pair_entry_min_bytes(),
        shortcuts_netsim::ping::CACHE_SHARDS as u64,
    ) {
        eprintln!("--memory-budget: {msg}");
        std::process::exit(2);
    }
    let max_sessions = cfg.max_sessions;
    let server = Server::start(args.addr.as_str(), cfg).unwrap_or_else(|e| {
        eprintln!("bind {}: {e}", args.addr);
        std::process::exit(1);
    });
    eprintln!(
        "shortcuts-service listening on {} ({} scale world, max {} sessions, \
         memory budget {}, credits {}/client refilling {}/s)",
        server.local_addr(),
        args.world_scale,
        max_sessions,
        args.memory_budget,
        credits.capacity,
        credits.refill_per_sec,
    );
    eprintln!(
        "try: colo-shortcuts client --addr {} --seed 2017 --rounds 4",
        server.local_addr()
    );
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn client(args: &Args) {
    let retry = RetryPolicy::with_attempts(args.retries);
    let mut client = Client::connect_with_retry(args.addr.as_str(), retry).unwrap_or_else(|e| {
        eprintln!("connect {}: {e}", args.addr);
        std::process::exit(1);
    });
    if args.framing != Framing::Text {
        if let Err(e) = client.negotiate(args.framing) {
            eprintln!("HELLO framing={} failed: {e}", args.framing.label());
            std::process::exit(1);
        }
    }

    if args.stats {
        // Stats-only probe: print one line per pooled engine stack.
        match client.stats() {
            Ok(lines) if lines.is_empty() => println!("no engine stacks pooled yet"),
            Ok(lines) => lines.iter().for_each(|l| println!("{l}")),
            Err(e) => {
                eprintln!("STATS failed: {e}");
                std::process::exit(1);
            }
        }
        client.quit();
        return;
    }

    if args.metrics {
        // Metrics-only probe: dump the server's Prometheus-style
        // exposition (stage histograms, gauges, engine/pool/credit
        // counters) and leave.
        match client.metrics() {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("METRICS failed: {e}");
                std::process::exit(1);
            }
        }
        client.quit();
        return;
    }

    // Build the request: SWEEP when --seeds names several scenarios,
    // RUN otherwise. Progress lines stream to stderr as rounds finish.
    let world = args
        .world_seed
        .map(|w| format!(" world-seed={w}"))
        .unwrap_or_default();
    let churn = if args.churn.is_empty() {
        String::new()
    } else {
        format!(" churn={}", args.churn)
    };
    let (request, labels): (String, Vec<String>) = if args.subscribe {
        // SUBSCRIBE shares one execution with every identical request;
        // churn is rejected server-side (not shareable), so it is not
        // offered here.
        if !args.churn.is_empty() {
            eprintln!("--subscribe does not take --churn: churning runs are not shareable");
            std::process::exit(2);
        }
        let (seeds_opt, labels) = if args.seeds.is_empty() {
            (
                format!("seed={}", args.seed),
                vec![format!("seed-{}", args.seed)],
            )
        } else {
            let seeds: Vec<String> = args.seeds.iter().map(u64::to_string).collect();
            (
                format!("seeds={}", seeds.join(",")),
                args.seeds.iter().map(|s| format!("seed-{s}")).collect(),
            )
        };
        (
            format!("SUBSCRIBE {seeds_opt} rounds={}{world}", args.rounds),
            labels,
        )
    } else if args.seeds.is_empty() {
        (
            format!(
                "RUN seed={} rounds={}{world}{churn}",
                args.seed, args.rounds
            ),
            vec![format!("seed-{}", args.seed)],
        )
    } else {
        let seeds: Vec<String> = args.seeds.iter().map(u64::to_string).collect();
        (
            format!(
                "SWEEP seeds={} rounds={}{world} jobs-in-flight={}{churn}",
                seeds.join(","),
                args.rounds,
                args.jobs_in_flight
            ),
            args.seeds.iter().map(|s| format!("seed-{s}")).collect(),
        )
    };
    eprintln!("> {request}");
    let outcome = client.run_streaming_with_retry(&request, retry, |event| match event {
        StreamEvent::Round(line) => eprintln!("round {line}"),
        StreamEvent::End(line) => eprintln!("done  {line}"),
    });
    if let Err(e) = outcome {
        eprintln!("{request} failed: {e}");
        std::process::exit(1);
    }

    // Fetch every scenario's cases CSV (plus the comparison table for
    // sweeps) into --out, named by the server.
    std::fs::create_dir_all(&args.out).expect("create --out directory");
    let mut fetches: Vec<String> = labels.iter().map(|l| format!("cases {l}")).collect();
    if labels.len() > 1 {
        fetches.push("sweep".to_string());
    }
    for what in fetches {
        match client.fetch_csv(&what) {
            Ok((name, bytes)) => {
                // The name comes off the wire; never let a hostile
                // server steer the write outside --out (absolute paths
                // or `..` traversal through Path::join).
                let file = std::path::Path::new(&name)
                    .file_name()
                    .filter(|f| *f == std::path::Path::new(&name).as_os_str())
                    .unwrap_or_else(|| {
                        eprintln!("server sent unsafe CSV name {name:?}");
                        std::process::exit(1);
                    });
                let path = args.out.join(file);
                std::fs::write(&path, bytes).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
                eprintln!("wrote {}", path.display());
            }
            Err(e) => {
                eprintln!("CSV {what} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    client.quit();
}
