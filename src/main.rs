//! `colo-shortcuts` — command-line front end for the reproduction.
//!
//! ```text
//! colo-shortcuts world-info [--seed S]
//! colo-shortcuts funnel     [--seed S]
//! colo-shortcuts campaign   [--seed S] [--rounds N] [--out DIR]
//!                           [--serial | --rounds-in-flight N]
//! ```
//!
//! `campaign` runs the paper's measurement campaign — streaming a
//! progress line per completed round — and writes the figure-ready
//! CSVs (`cases.csv`, `improvement.csv`, `top_relays.csv`,
//! `threshold.csv`, `funnel.csv`) into `--out` (default `./out`).
//! `--rounds-in-flight N` selects the round-sharded pipeline (N rounds
//! measured concurrently); `--serial` forces one window at a time; the
//! default is per-round parallel. All three produce bit-identical
//! results for the same seed.

use shortcuts_core::analysis::improvement::ImprovementAnalysis;
use shortcuts_core::analysis::threshold::ThresholdCurve;
use shortcuts_core::analysis::top_relays::TopRelayAnalysis;
use shortcuts_core::report;
use shortcuts_core::workflow::{Campaign, CampaignConfig};
use shortcuts_core::world::{World, WorldConfig};
use shortcuts_core::RelayType;
use std::path::PathBuf;

struct Args {
    seed: u64,
    rounds: u32,
    out: PathBuf,
    serial: bool,
    rounds_in_flight: Option<usize>,
}

fn parse_args(mut argv: std::env::Args) -> (String, Args) {
    let _bin = argv.next();
    let cmd = argv.next().unwrap_or_else(|| "help".to_string());
    let mut args = Args {
        seed: 2017,
        rounds: 8,
        out: PathBuf::from("out"),
        serial: false,
        rounds_in_flight: None,
    };
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        let need_value = |i: usize| -> &str {
            rest.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", rest[i]);
                    std::process::exit(2);
                })
                .as_str()
        };
        match rest[i].as_str() {
            "--seed" => {
                args.seed = need_value(i).parse().expect("--seed takes a u64");
                i += 2;
            }
            "--rounds" => {
                args.rounds = need_value(i).parse().expect("--rounds takes a u32");
                i += 2;
            }
            "--out" => {
                args.out = PathBuf::from(need_value(i));
                i += 2;
            }
            "--serial" => {
                args.serial = true;
                i += 1;
            }
            "--rounds-in-flight" => {
                args.rounds_in_flight = Some(
                    need_value(i)
                        .parse()
                        .expect("--rounds-in-flight takes a usize"),
                );
                i += 2;
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.serial && args.rounds_in_flight.is_some() {
        eprintln!("--serial and --rounds-in-flight are mutually exclusive");
        std::process::exit(2);
    }
    (cmd, args)
}

fn main() {
    let (cmd, args) = parse_args(std::env::args());
    match cmd.as_str() {
        "world-info" => world_info(&args),
        "funnel" => funnel(&args),
        "campaign" => campaign(&args),
        _ => {
            eprintln!(
                "usage: colo-shortcuts <world-info|funnel|campaign> [--seed S] [--rounds N] \
                 [--out DIR] [--serial | --rounds-in-flight N]"
            );
            std::process::exit(2);
        }
    }
}

fn build(args: &Args) -> World {
    eprintln!("building world (seed {}) ...", args.seed);
    World::build(&WorldConfig::paper_scale(), args.seed)
}

fn world_info(args: &Args) {
    let w = build(args);
    println!("seed:        {}", w.seed);
    println!("ASes:        {}", w.topo.as_count());
    println!("links:       {}", w.topo.link_count());
    println!("facilities:  {}", w.topo.facilities().len());
    println!("IXPs:        {}", w.topo.ixps().len());
    println!("hosts:       {}", w.hosts.len());
    println!("RA probes:   {}", w.ripe.probes().len());
    println!("PL nodes:    {}", w.planetlab.nodes().len());
    println!(
        "LGs:         {} in {} cities",
        w.looking_glasses.lgs().len(),
        w.looking_glasses.city_count()
    );
    println!("facility-dataset records: {}", w.facility_dataset.len());
}

fn funnel(args: &Args) {
    use rand::SeedableRng;
    use shortcuts_core::colo::{run_pipeline, ColoPipelineConfig};
    use shortcuts_netsim::clock::SimTime;
    use shortcuts_netsim::PingEngine;
    use shortcuts_topology::routing::Router;
    let w = build(args);
    let router = Router::new(&w.topo);
    let engine = PingEngine::new(&w.topo, &router, &w.hosts, w.latency.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
    let pool = run_pipeline(
        &w,
        &engine,
        w.looking_glasses.lgs()[0].host,
        SimTime(0.0),
        &ColoPipelineConfig::default(),
        &mut rng,
    );
    print!("{}", report::funnel_csv(&pool.funnel));
}

fn campaign(args: &Args) {
    let w = build(args);
    let mut cfg = CampaignConfig::paper();
    cfg.rounds = args.rounds;
    cfg.seed = args.seed;
    let mode = if args.serial {
        cfg.exec = shortcuts_core::ExecMode::Serial;
        "serial".to_string()
    } else if let Some(n) = args.rounds_in_flight {
        cfg.exec = shortcuts_core::ExecMode::Sharded {
            rounds_in_flight: n,
        };
        format!("sharded, {n} rounds in flight")
    } else {
        "parallel".to_string()
    };
    eprintln!("running {} rounds ({mode}) ...", cfg.rounds);
    // Stream per-round progress: summaries arrive in round order as
    // rounds complete, long before the campaign finishes.
    let results = Campaign::new(&w, cfg).run_streaming(|s| {
        eprintln!(
            "round {:>3}: {} endpoints, {} cases ({} unresponsive), \
             {} of {} links, {} symmetry samples",
            s.round,
            s.endpoints,
            s.cases,
            s.unresponsive_pairs,
            s.links_measured,
            s.links_planned,
            s.symmetry_samples,
        );
    });
    eprintln!(
        "{} cases, {:.2} M pings",
        results.total_cases(),
        results.pings_sent as f64 / 1e6
    );

    std::fs::create_dir_all(&args.out).expect("create --out directory");
    let write = |name: &str, contents: String| {
        let path = args.out.join(name);
        std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        eprintln!("wrote {}", path.display());
    };

    write("cases.csv", report::cases_csv(&results));
    let imp = ImprovementAnalysis::compute(&results);
    write("improvement.csv", report::improvement_csv(&imp));
    let tops: Vec<TopRelayAnalysis> = RelayType::ALL
        .iter()
        .map(|&t| TopRelayAnalysis::compute(&results, t, 200))
        .collect();
    write("top_relays.csv", report::top_relays_csv(&tops));
    let xs: Vec<f64> = (0..=20).map(|i| f64::from(i) * 5.0).collect();
    let mut curves = Vec::new();
    for t in RelayType::ALL {
        curves.push(ThresholdCurve::compute(&results, t, Some(10), &xs));
        curves.push(ThresholdCurve::compute(&results, t, None, &xs));
    }
    write("threshold.csv", report::threshold_csv(&curves));
    write("funnel.csv", report::funnel_csv(&results.colo_pool.funnel));
}
