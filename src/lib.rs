//! Umbrella crate re-exporting the full colo-shortcuts stack.
pub use shortcuts_atlas as atlas;
pub use shortcuts_core as core;
pub use shortcuts_datasets as datasets;
pub use shortcuts_geo as geo;
pub use shortcuts_netsim as netsim;
pub use shortcuts_service as service;
pub use shortcuts_topology as topology;
